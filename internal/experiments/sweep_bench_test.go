package experiments

import (
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"
)

// BenchmarkSweepScaling times the Fig. 11 validation sweep serially and
// on a 4-worker pool, reports both as custom metrics, and records the
// comparison into results/sweep_scaling.csv. Each run gets a fresh
// harness so the profile cache cannot transfer work between the two
// configurations.
//
// On a multicore host the 4-worker sweep should cut wall time by >= 2x;
// on a single-CPU machine (some CI containers) the two times converge,
// which the CSV makes visible rather than hiding.
func BenchmarkSweepScaling(b *testing.B) {
	cfg := Config{Machine: fastMachine(), Samples: 16, Seed: 7}
	run := func(workers int) time.Duration {
		cfg := cfg
		cfg.Workers = workers
		start := time.Now()
		res := New(cfg).Fig11()
		if res.Failed != 0 {
			b.Fatalf("workers=%d: %d failed cells", workers, res.Failed)
		}
		return time.Since(start)
	}

	var serial, par4 time.Duration
	for i := 0; i < b.N; i++ {
		serial += run(1)
		par4 += run(4)
	}
	serialMS := float64(serial.Microseconds()) / 1000 / float64(b.N)
	par4MS := float64(par4.Microseconds()) / 1000 / float64(b.N)
	b.ReportMetric(serialMS, "serial-ms/op")
	b.ReportMetric(par4MS, "par4-ms/op")
	b.ReportMetric(serialMS/par4MS, "speedup-x")
	// Domain throughput: sweep cells (one validation sample each)
	// completed per second on the 4-worker pool.
	b.ReportMetric(float64(cfg.Samples)*1000/par4MS, "cells/sec")

	csv := fmt.Sprintf("sweep,samples,serial_ms,par4_ms,speedup_x,cpus\nfig11,%d,%.2f,%.2f,%.2f,%d\n",
		cfg.Samples, serialMS, par4MS, serialMS/par4MS, runtime.GOMAXPROCS(0))
	if err := os.WriteFile("../../results/sweep_scaling.csv", []byte(csv), 0o644); err != nil {
		b.Logf("could not record results/sweep_scaling.csv: %v", err)
	}
}
