package experiments

import (
	"context"
	"fmt"
	"strconv"

	"prophet"
	"prophet/internal/report"
	"prophet/internal/sweep"
	"prophet/internal/workloads"
)

// MachineMatrix predicts the configured benchmarks across machine
// presets: one PredM (FF with memory model) speedup column per machine,
// one row per (benchmark, cores) pair — the paper's Fig. 12 numbers
// re-asked for hardware the paper never had. The (benchmark, cores,
// machine) grid runs as independent cells on the worker pool; each
// benchmark is profiled once through the harness cache and each machine
// variant once through the profile's own variant cache, so the matrix
// costs one re-profile + recalibration per (benchmark, machine), not
// per cell.
func (h *Harness) MachineMatrix(names []string, machines []string) *report.Table {
	cfg := h.cfg
	if names == nil {
		names = workloads.Names()
	}
	if len(machines) == 0 {
		machines = prophet.MachineNames()
	}
	var ws []*workloads.Workload
	for _, name := range names {
		w, err := workloads.ByName(name)
		if err != nil {
			continue
		}
		ws = append(ws, w)
	}

	type cellID struct{ w, c, m int }
	grid := make([]cellID, 0, len(ws)*len(cfg.Cores)*len(machines))
	for wi := range ws {
		for ci := range cfg.Cores {
			for mi := range machines {
				grid = append(grid, cellID{wi, ci, mi})
			}
		}
	}
	outs := sweep.RunCtx(h.ctx, h.eng, len(grid), func(ctx context.Context, i int) (string, error) {
		id := grid[i]
		w := ws[id.w]
		prof, err := h.profileBench(ctx, w)
		if err := ctx.Err(); err != nil {
			return "", err
		}
		if err != nil {
			return "-", nil // benchmark skipped, as in Fig. 12
		}
		req := prophet.Request{
			Threads:     cfg.Cores[id.c],
			Paradigm:    w.Paradigm,
			Sched:       w.Sched,
			MemoryModel: true,
			Machine:     machines[id.m],
		}
		est, err := prof.EstimateCtx(ctx, req)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("%.2f", est.Speedup), nil
	})

	headers := append([]string{"benchmark", "cores"}, machines...)
	t := report.NewTable("machine matrix — PredM speedup per machine preset", headers...)
	for wi, w := range ws {
		for ci, cores := range cfg.Cores {
			row := []string{w.Name, strconv.Itoa(cores)}
			for mi := range machines {
				o := outs[(wi*len(cfg.Cores)+ci)*len(machines)+mi]
				switch {
				case o.Skipped || o.Err != nil:
					row = append(row, "-")
				default:
					row = append(row, o.Value)
				}
			}
			t.AddRow(row...)
		}
	}
	return t
}
