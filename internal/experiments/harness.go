package experiments

import (
	"context"
	"fmt"

	"prophet"
	"prophet/internal/obs"
	"prophet/internal/sweep"
	"prophet/internal/workloads"
)

// Harness evaluates the paper's experiment grids on a bounded worker
// pool (internal/sweep). Every (workload, seed, cores, schedule) cell is
// an independent deterministic profile→emulate pipeline, so cells run
// concurrently and results are merged in cell order — the rendered
// tables and CSVs are byte-identical to a serial run at any worker
// count.
//
// The harness also carries keyed profile caches shared across figures:
// Fig. 11's six panels reuse the same random Test1/Test2 trees, and
// Fig. 12 / Table III share benchmark profiles, so each input is
// profiled exactly once per harness no matter how many cells consume it.
type Harness struct {
	cfg Config
	ctx context.Context
	eng sweep.Engine

	// Profile caches, keyed by the cell fingerprint that fully
	// determines the profile (the generator parameters / the benchmark
	// name — machine and thread counts are fixed per harness).
	t1    sweep.Cache[workloads.Test1Params, *prophet.Profile]
	t2    sweep.Cache[workloads.Test2Params, *prophet.Profile]
	bench sweep.Cache[string, *prophet.Profile]
}

// New builds a harness for cfg. cfg.Workers bounds the worker pool
// (0 = GOMAXPROCS, 1 = serial).
func New(cfg Config) *Harness {
	return NewCtx(context.Background(), cfg)
}

// NewCtx builds a harness whose sweeps honour ctx: once it fires, no new
// cell starts, in-flight cells drain, and unclaimed cells come back
// marked Skipped. With cfg.FailFast the first cell error cancels the rest
// of the sweep the same way.
func NewCtx(ctx context.Context, cfg Config) *Harness {
	cfg = cfg.withDefaults()
	if ctx == nil {
		ctx = context.Background()
	}
	h := &Harness{
		cfg: cfg,
		ctx: ctx,
		eng: sweep.Engine{Workers: cfg.Workers, FailFast: cfg.FailFast, Metrics: cfg.Metrics},
	}
	// One set of cache counters, shared by all three profile caches (nil
	// handles — a no-op — when metrics are disabled).
	ctrs := sweep.CacheCounters{
		Hits:   cfg.Metrics.Counter(obs.MCacheHits),
		Misses: cfg.Metrics.Counter(obs.MCacheMisses),
		Dedups: cfg.Metrics.Counter(obs.MCacheDedups),
	}
	h.t1.Instrument(ctrs)
	h.t2.Instrument(ctrs)
	h.bench.Instrument(ctrs)
	return h
}

// Config returns the harness configuration with defaults applied.
func (h *Harness) Config() Config { return h.cfg }

// validationOpts are the profiling options of the §VII-B validation
// sweeps (Fig. 11, ranking): the memory model is off, as the generated
// Test1/Test2 programs carry no memory traffic.
func (h *Harness) validationOpts() *prophet.Options {
	return &prophet.Options{
		Machine:            h.cfg.Machine,
		DisableMemoryModel: true,
		Observer:           prophet.Observer{Metrics: h.cfg.Metrics},
	}
}

// benchOpts are the profiling options of the benchmark sweeps (Fig. 12,
// Table III): full memory model over the configured thread counts.
func (h *Harness) benchOpts() *prophet.Options {
	return &prophet.Options{
		Machine:      h.cfg.Machine,
		ThreadCounts: h.cfg.Cores,
		Observer:     prophet.Observer{Metrics: h.cfg.Metrics},
	}
}

// profileTest1 profiles one Test1 sample through the shared cache.
// Cancellation errors are never cached, so a canceled sweep does not
// poison the cache for a later run.
func (h *Harness) profileTest1(ctx context.Context, p workloads.Test1Params) (*prophet.Profile, error) {
	return h.t1.Get(p, func() (*prophet.Profile, error) {
		return prophet.ProfileProgramCtx(ctx, p.Program(), h.validationOpts())
	})
}

// profileTest2 profiles one Test2 sample through the shared cache.
func (h *Harness) profileTest2(ctx context.Context, p workloads.Test2Params) (*prophet.Profile, error) {
	return h.t2.Get(p, func() (*prophet.Profile, error) {
		return prophet.ProfileProgramCtx(ctx, p.Program(), h.validationOpts())
	})
}

// profileBench profiles one named benchmark through the shared cache.
func (h *Harness) profileBench(ctx context.Context, w *workloads.Workload) (*prophet.Profile, error) {
	return h.bench.Get(w.Name, func() (*prophet.Profile, error) {
		return prophet.ProfileProgramCtx(ctx, w.Program, h.benchOpts())
	})
}

// CacheStats describes the harness's profile caches (for logs and the
// scaling benchmark).
func (h *Harness) CacheStats() string {
	t1h, t1m := h.t1.Stats()
	t2h, t2m := h.t2.Stats()
	bh, bm := h.bench.Stats()
	return fmt.Sprintf("profile cache: test1 %d/%d hit, test2 %d/%d hit, bench %d/%d hit, %d deduped in flight",
		t1h, t1h+t1m, t2h, t2h+t2m, bh, bh+bm,
		h.t1.Dedups()+h.t2.Dedups()+h.bench.Dedups())
}
