// Package report renders the evaluation's tables and figure data as
// aligned text and CSV, so cmd/ppexp can regenerate every table and figure
// of the paper as terminal output and machine-readable series.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple aligned text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; short rows are padded.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Headers))
	copy(row, cells)
	t.Rows = append(t.Rows, row)
}

// WriteTo renders the table.
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "## %s\n\n", t.Title)
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
	b.WriteByte('\n')
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	_, _ = t.WriteTo(&b)
	return b.String()
}

// WriteMarkdown renders the table as a GitHub-flavoured markdown table.
func (t *Table) WriteMarkdown(w io.Writer) error {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "## %s\n\n", t.Title)
	}
	row := func(cells []string) {
		b.WriteString("|")
		for _, c := range cells {
			b.WriteString(" ")
			b.WriteString(strings.ReplaceAll(c, "|", "\\|"))
			b.WriteString(" |")
		}
		b.WriteString("\n")
	}
	row(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = "---"
	}
	row(sep)
	for _, r := range t.Rows {
		row(r)
	}
	b.WriteString("\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// Series holds figure data: one x column and several named y columns —
// e.g. Fig. 12's per-benchmark (cores; Real, Pred, PredM, Suit).
type Series struct {
	Name   string
	XLabel string
	Cols   []string
	X      []float64
	Y      [][]float64 // Y[i][j] = column j at X[i]
}

// NewSeries creates a series with the given y-column names.
func NewSeries(name, xlabel string, cols ...string) *Series {
	return &Series{Name: name, XLabel: xlabel, Cols: cols}
}

// AddPoint appends one x with its y values.
func (s *Series) AddPoint(x float64, ys ...float64) {
	s.X = append(s.X, x)
	row := make([]float64, len(s.Cols))
	copy(row, ys)
	s.Y = append(s.Y, row)
}

// Table renders the series as an aligned table.
func (s *Series) Table() *Table {
	t := NewTable(s.Name, append([]string{s.XLabel}, s.Cols...)...)
	for i, x := range s.X {
		cells := []string{fmt.Sprintf("%g", x)}
		for _, y := range s.Y[i] {
			cells = append(cells, fmt.Sprintf("%.2f", y))
		}
		t.AddRow(cells...)
	}
	return t
}

// WriteCSV emits the series as CSV (header row, then one row per x).
func (s *Series) WriteCSV(w io.Writer) error {
	cols := append([]string{s.XLabel}, s.Cols...)
	if _, err := fmt.Fprintln(w, strings.Join(cols, ",")); err != nil {
		return err
	}
	for i, x := range s.X {
		cells := []string{fmt.Sprintf("%g", x)}
		for _, y := range s.Y[i] {
			cells = append(cells, fmt.Sprintf("%.4f", y))
		}
		if _, err := fmt.Fprintln(w, strings.Join(cells, ",")); err != nil {
			return err
		}
	}
	return nil
}

// Scatter holds (x, y) point data with a label per point class — the
// Fig. 11 predicted-vs-real scatter plots.
type Scatter struct {
	Name   string
	Labels []string       // one per class (e.g. schedule)
	Points [][][2]float64 // Points[class][i] = (pred, real)
}

// NewScatter creates a scatter container with the given class labels.
func NewScatter(name string, labels ...string) *Scatter {
	return &Scatter{Name: name, Labels: labels, Points: make([][][2]float64, len(labels))}
}

// Add records a point in the given class.
func (s *Scatter) Add(class int, pred, real float64) {
	s.Points[class] = append(s.Points[class], [2]float64{pred, real})
}

// WriteCSV emits "class,pred,real" rows.
func (s *Scatter) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "class,predicted,real"); err != nil {
		return err
	}
	for c, pts := range s.Points {
		for _, p := range pts {
			if _, err := fmt.Fprintf(w, "%s,%.4f,%.4f\n", s.Labels[c], p[0], p[1]); err != nil {
				return err
			}
		}
	}
	return nil
}
