package report

import (
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	tb := NewTable("Fig. 5", "schedule", "predicted", "real")
	tb.AddRow("(static,1)", "1.30", "1.31")
	tb.AddRow("(dynamic,1)", "1.58", "1.60")
	s := tb.String()
	if !strings.Contains(s, "## Fig. 5") {
		t.Error("missing title")
	}
	lines := strings.Split(strings.TrimSpace(s), "\n")
	// Title, blank, header, separator, 2 rows.
	if len(lines) != 6 {
		t.Fatalf("lines = %d:\n%s", len(lines), s)
	}
	if len(lines[2]) != len(lines[3]) {
		t.Errorf("separator width mismatch:\n%s", s)
	}
	// Short rows pad instead of panicking.
	tb.AddRow("only-one")
	if !strings.Contains(tb.String(), "only-one") {
		t.Error("short row lost")
	}
}

func TestSeriesTableAndCSV(t *testing.T) {
	s := NewSeries("NPB-FT", "cores", "Real", "Pred", "PredM")
	s.AddPoint(2, 1.9, 2.0, 1.95)
	s.AddPoint(4, 3.1, 4.0, 3.3)
	tb := s.Table()
	if len(tb.Rows) != 2 || tb.Headers[0] != "cores" {
		t.Fatalf("table shape wrong: %+v", tb)
	}
	var csv strings.Builder
	if err := s.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	got := csv.String()
	if !strings.HasPrefix(got, "cores,Real,Pred,PredM\n") {
		t.Fatalf("csv header: %q", got)
	}
	if !strings.Contains(got, "4,3.1000,4.0000,3.3000") {
		t.Fatalf("csv body: %q", got)
	}
}

func TestScatterCSV(t *testing.T) {
	sc := NewScatter("Test1 8-core", "static-1", "dynamic-1")
	sc.Add(0, 3.0, 3.1)
	sc.Add(1, 5.0, 4.8)
	var b strings.Builder
	if err := sc.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	for _, want := range []string{"class,predicted,real", "static-1,3.0000,3.1000", "dynamic-1,5.0000,4.8000"} {
		if !strings.Contains(got, want) {
			t.Errorf("csv missing %q:\n%s", want, got)
		}
	}
}

func TestTableMarkdown(t *testing.T) {
	tb := NewTable("Fig. X", "a", "b")
	tb.AddRow("1", "with|pipe")
	var b strings.Builder
	if err := tb.WriteMarkdown(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	for _, want := range []string{"## Fig. X", "| a | b |", "| --- | --- |", "with\\|pipe"} {
		if !strings.Contains(got, want) {
			t.Errorf("markdown missing %q:\n%s", want, got)
		}
	}
}
