package ff

import (
	"testing"

	"prophet/internal/omprt"
	"prophet/internal/tree"
)

// TestNoWaitOverlapsWithTaskTail: a task runs a nested nowait section and
// then more computation; with nowait the tail overlaps the nested tasks on
// other CPUs, without it everything serializes behind the barrier.
func TestNoWaitOverlapsWithTaskTail(t *testing.T) {
	build := func(nowait bool) *tree.Node {
		inner := tree.NewSec("inner",
			tree.NewTask("i0", tree.NewU(1_000)),
			tree.NewTask("i1", tree.NewU(1_000)),
		)
		inner.NoWait = nowait
		return tree.NewRoot(tree.NewSec("outer",
			tree.NewTask("t", inner, tree.NewU(1_000)),
		))
	}
	e := &Emulator{Threads: 2, Sched: omprt.SchedStatic1}
	barrier := e.PredictTime(build(false))
	nowait := e.PredictTime(build(true))
	// With barrier: inner (two 1000 tasks on 2 cpus = 1000) + tail 1000
	// = 2000. With nowait: tail overlaps the inner task on cpu1; the
	// inner task on cpu0 serializes with the tail (non-preemptive), so
	// the result is still bounded by 2000 but the barrier wait vanishes
	// when the halves are uneven. Use an uneven case to see a win:
	if nowait > barrier {
		t.Fatalf("nowait (%d) slower than barrier (%d)", nowait, barrier)
	}

	// Uneven: one long inner task; the tail can overlap it under nowait.
	uneven := func(nw bool) *tree.Node {
		inner := tree.NewSec("inner",
			tree.NewTask("i0", tree.NewU(100)),
			tree.NewTask("i1", tree.NewU(3_000)),
		)
		inner.NoWait = nw
		return tree.NewRoot(tree.NewSec("outer",
			tree.NewTask("t", inner, tree.NewU(2_000)),
		))
	}
	b := e.PredictTime(uneven(false))
	n := e.PredictTime(uneven(true))
	// Barrier: wait for 3000, then 2000 tail => >= 5000.
	// Nowait: tail (on cpu0, after the 100 task) overlaps the 3000 task
	// on cpu1; join at task end => ~3000-ish.
	if b < 5_000 {
		t.Fatalf("barrier version %d, want >= 5000", b)
	}
	if n >= b {
		t.Fatalf("nowait %d did not beat barrier %d", n, b)
	}
	if n > 3_600 {
		t.Fatalf("nowait %d, want ~3000 (overlap)", n)
	}
}

// TestNoWaitStillJoinsBeforeTaskEnd: the enclosing task's completion time
// must cover the nowait section (no work may escape the task).
func TestNoWaitStillJoinsBeforeTaskEnd(t *testing.T) {
	inner := tree.NewSec("inner",
		tree.NewTask("i0", tree.NewU(10_000)),
	)
	inner.NoWait = true
	root := tree.NewRoot(tree.NewSec("outer",
		tree.NewTask("t", inner, tree.NewU(100)),
	))
	e := &Emulator{Threads: 4, Sched: omprt.SchedStatic1}
	got := e.PredictTime(root)
	if got < 10_000 {
		t.Fatalf("predicted %d: nowait section escaped its task", got)
	}
}
