// Package ff implements Parallel Prophet's fast-forwarding emulation (the
// FF, §IV-C of the paper): an analytical, priority-heap emulator that
// replays a program tree onto abstract CPUs and fast-forwards a
// pseudo-clock from event to event.
//
// The FF models:
//
//   - OpenMP loop schedules — (static), (static,c), (dynamic,c), (guided) —
//     so schedule-dependent speedups come out differently (Fig. 5);
//   - multiple locks with FIFO arbitration in pseudo-time order, so lock
//     contention serializes critical sections exactly as a real mutex
//     would for the profiled arrival order;
//   - parallel overheads (fork/join, per-chunk dispatch, lock enter/exit)
//     using the same constants as the OpenMP runtime in internal/omprt, the
//     EPCC-style calibration the paper describes;
//   - burden factors: every U/L length inside a top-level section is
//     multiplied by the section's β_t from the memory model (§V).
//
// Nested sections are handled the way the paper *documents as the FF's
// limitation* (§IV-D): nested tasks are assigned to the global CPUs
// round-robin and run non-preemptively, with no OS time slicing. This is
// deliberate — it reproduces Fig. 7, where the FF (and Suitability)
// predict 1.5x for a two-level nested loop whose real speedup is 2.0x; the
// synthesizer (internal/synth) is the paper's fix.
package ff

import (
	"context"
	"fmt"
	"math"
	"sync"

	"prophet/internal/clock"
	"prophet/internal/eventq"
	"prophet/internal/obs"
	"prophet/internal/omprt"
	"prophet/internal/tree"
)

// Emulator predicts the parallel execution time of a program tree for one
// (threads, schedule) configuration.
type Emulator struct {
	// Threads is the CPU count to predict for.
	Threads int
	// Sched is the OpenMP scheduling policy to emulate.
	Sched omprt.Sched
	// Ov holds the parallel-overhead constants (use
	// omprt.DefaultOverheads for the calibrated values; zero for an
	// idealized machine).
	Ov omprt.Overheads
	// UseBurden applies the memory model's burden factors when set
	// (the paper's "PredM"); otherwise lengths are used as profiled
	// ("Pred").
	UseBurden bool
	// Speeds, when non-nil, gives each abstract CPU a clock ratio
	// (machine.Spec.CoreSpeeds order): computation on CPU i takes
	// 1/Speeds[i mod len] of the profiled time. Nil is the homogeneous
	// machine and the exact legacy arithmetic. Overhead constants are
	// runtime costs and are not scaled.
	Speeds []float64
	// Tracer, when set, receives one KFFStep event per emulated segment
	// (worker pseudo-clock advance on an abstract CPU); nil disables
	// tracing at the cost of one branch per segment.
	Tracer obs.ExecTracer
}

// PredictTime returns the emulated parallel execution time of the whole
// program: emulated top-level sections plus the untouched serial regions
// (the formula of §IV-E applied to the FF).
func (e *Emulator) PredictTime(root *tree.Node) clock.Cycles {
	t, _ := e.PredictTimeCtx(context.Background(), root)
	return t
}

// cancelPanic unwinds the emulation's recursive descent when the context
// is canceled; it never escapes the package.
type cancelPanic struct{ err error }

// PredictTimeCtx is PredictTime with cancellation: the emulation polls ctx
// between events and returns an error wrapping ctx.Err() when it fires.
func (e *Emulator) PredictTimeCtx(ctx context.Context, root *tree.Node) (t clock.Cycles, err error) {
	defer func() {
		if r := recover(); r != nil {
			cp, ok := r.(cancelPanic)
			if !ok {
				panic(r)
			}
			t, err = 0, cp.err
		}
	}()
	total := root.SerialOutsideSections()
	for _, sec := range root.TopLevelSections() {
		// A Repeat-compressed top-level section ran Reps times
		// back-to-back in the serial program.
		total += e.emulateTopSectionCtx(ctx, sec) * clock.Cycles(sec.Reps())
	}
	return total, nil
}

// Speedup returns serial time / predicted parallel time.
func (e *Emulator) Speedup(root *tree.Node) float64 {
	s, _ := e.SpeedupCtx(context.Background(), root)
	return s
}

// SpeedupCtx is Speedup with cancellation.
func (e *Emulator) SpeedupCtx(ctx context.Context, root *tree.Node) (float64, error) {
	serial := root.TotalLen()
	pred, err := e.PredictTimeCtx(ctx, root)
	if err != nil {
		return 0, err
	}
	if pred <= 0 {
		return 1, nil
	}
	return float64(serial) / float64(pred), nil
}

// threadCount clamps the configured thread count.
func (e *Emulator) threads() int {
	if e.Threads < 1 {
		return 1
	}
	return e.Threads
}

// state is the per-emulation shared state: the per-CPU occupancy of
// *nested* work, the lock free-times, and the burden factor of the
// enclosing top-level section.
//
// avail tracks only nested-section placements: nested tasks are mapped
// onto CPUs round-robin and non-preemptively, so concurrent nested
// sections contend for the same CPU slots (the §IV-D limitation that
// yields Fig. 7's 1.5x), while the section's own workers keep their own
// clocks — matching the accuracy profile the paper reports (exact on
// single-level loops, moderate average error with a heavy tail on nested
// programs).
type state struct {
	avail    []clock.Cycles // per-CPU busy-until for nested work
	lockFree map[int]clock.Cycles
	burden   float64
	speeds   []float64 // per-CPU clock ratios; nil = homogeneous
	ov       omprt.Overheads
	sched    omprt.Sched
	ctx      context.Context
	steps    int64 // events since the last cancellation poll
	tracer   obs.ExecTracer
}

// tick polls the cancellation context every 4096 emulated events; on
// cancellation it unwinds the (recursive) emulation with a private panic
// recovered in PredictTimeCtx.
func (st *state) tick() {
	st.steps++
	if st.steps&0xfff != 0 || st.ctx == nil {
		return
	}
	if err := st.ctx.Err(); err != nil {
		panic(cancelPanic{fmt.Errorf("ff: emulation aborted after %d events: %w", st.steps, err)})
	}
}

// statePool recycles per-top-section emulation state (CPU availability
// slices, lock tables) across sweeps; scratch is acquired per section, so
// concurrent emulations and nested sections never share one.
var statePool = sync.Pool{New: func() any { return &state{} }}

// init prepares pooled state for a fresh top-level section.
func (st *state) init(p int, burden float64, speeds []float64, ov omprt.Overheads, sched omprt.Sched, ctx context.Context, tracer obs.ExecTracer) {
	if cap(st.avail) < p {
		st.avail = make([]clock.Cycles, p)
	} else {
		st.avail = st.avail[:p]
		for i := range st.avail {
			st.avail[i] = 0
		}
	}
	if st.lockFree == nil {
		st.lockFree = make(map[int]clock.Cycles)
	} else {
		clear(st.lockFree)
	}
	st.burden = burden
	st.speeds = speeds
	st.ov = ov
	st.sched = sched
	st.ctx = ctx
	st.steps = 0
	st.tracer = tracer
}

func putState(st *state) {
	st.ctx = nil
	st.tracer = nil
	st.speeds = nil
	statePool.Put(st)
}

func (e *Emulator) emulateTopSectionCtx(ctx context.Context, sec *tree.Node) clock.Cycles {
	p := e.threads()
	burden := 1.0
	if e.UseBurden {
		burden = sec.BurdenFor(p)
	}
	st := statePool.Get().(*state)
	defer putState(st)
	st.init(p, burden, e.Speeds, e.Ov, e.Sched, ctx, e.Tracer)
	if sec.Pipeline {
		return emulatePipeline(st, sec, 0, p)
	}
	return emulateSection(st, sec, 0, p)
}

// taskRef is one logical task (Repeat runs expanded lazily by index).
type taskRef struct {
	node *tree.Node
}

// appendTasks appends the logical task list of a section to dst.
func appendTasks(dst []taskRef, sec *tree.Node) []taskRef {
	for _, c := range sec.Children {
		if c.Kind != tree.Task {
			continue
		}
		for r := 0; r < c.Reps(); r++ {
			dst = append(dst, taskRef{node: c})
		}
	}
	return dst
}

// expandTasks returns the logical task list of a section.
func expandTasks(sec *tree.Node) []taskRef { return appendTasks(nil, sec) }

// worker is one emulated team member inside a section emulation. Workers
// advance one segment at a time through the priority heap, so lock
// acquisitions across workers happen in pseudo-time order (Fig. 5 depends
// on this: the thread that reaches the lock earlier gets it first).
type worker struct {
	id   int // worker rank
	cpu  int
	time clock.Cycles
	// static assignment queue; dynamic workers pull from the shared
	// counter instead.
	tasks []taskRef
	pos   int

	// Cursor into the currently executing task.
	cur    *tree.Node
	segIdx int
	repIdx int
	// pendingJoin is the latest finish time of nowait nested sections
	// started by the current task; the task joins them when it ends.
	pendingJoin clock.Cycles
}

// Less orders workers by pseudo-clock, rank breaking ties — a strict total
// order, so the monomorphic heap visits workers in exactly the order the
// container/heap implementation did.
func (w *worker) Less(o *worker) bool {
	if w.time != o.time {
		return w.time < o.time
	}
	return w.id < o.id
}

// sectionScratch is the pooled per-section working set: the worker array,
// the pseudo-clock heap over it, the expanded task list, and the shared
// dynamic-schedule counter. One scratch is acquired per emulateSection /
// emulateNested invocation (nested sections draw their own), so backing
// arrays are reused across the thousands of sections a sweep emulates.
type sectionScratch struct {
	workers []worker
	order   eventq.Heap[*worker]
	tasks   []taskRef
	fetch   fetchState
}

var sectionPool = sync.Pool{New: func() any { return &sectionScratch{} }}

func getScratch() *sectionScratch { return sectionPool.Get().(*sectionScratch) }

// putScratch zeroes pointer-bearing slots (so pooled scratch does not pin
// program trees between emulations) and returns the scratch to the pool.
func putScratch(sc *sectionScratch) {
	sc.order.Reset()
	for i := range sc.workers {
		sc.workers[i] = worker{}
	}
	for i := range sc.tasks {
		sc.tasks[i] = taskRef{}
	}
	sc.tasks = sc.tasks[:0]
	sc.fetch = fetchState{}
	sectionPool.Put(sc)
}

// emulateSection emulates one section (top-level or nested) starting at
// time start on p CPUs and returns its duration including fork/join
// overhead. Nested sections are emulated when the enclosing worker reaches
// them (see runTask).
func emulateSection(st *state, sec *tree.Node, start clock.Cycles, p int) clock.Cycles {
	sc := getScratch()
	defer putScratch(sc)
	sc.tasks = appendTasks(sc.tasks[:0], sec)
	tasks := sc.tasks
	n := len(tasks)
	if n == 0 {
		return 0
	}
	nt := p
	if nt > n {
		nt = n
	}
	// The master forks nt-1 workers.
	begin := start + st.ov.ForkPerThread*clock.Cycles(nt-1)

	if cap(sc.workers) < nt {
		sc.workers = make([]worker, nt)
	} else {
		sc.workers = sc.workers[:nt]
	}
	for w := 0; w < nt; w++ {
		sc.workers[w] = worker{id: w, cpu: w % p, time: begin + st.ov.WorkerInit}
	}
	assignStatic(st.sched, sc.workers, tasks)
	sc.fetch = fetchState{tasks: tasks, sched: st.sched, nt: nt}
	shared := &sc.fetch

	h := &sc.order
	h.Grow(nt)
	for w := range sc.workers {
		h.Append(&sc.workers[w])
	}
	h.Init()
	var finish clock.Cycles
	for h.Len() > 0 {
		st.tick()
		w := h.Peek()
		if w.cur == nil {
			tr, dispatch, ok := nextTask(st, w, shared)
			if !ok {
				if w.time > finish {
					finish = w.time
				}
				h.Pop()
				continue
			}
			w.time += dispatch
			w.cur, w.segIdx, w.repIdx = tr.node, 0, 0
		}
		stepSegment(st, w, p)
		h.FixTop()
	}
	return finish - start + st.ov.JoinBarrier
}

// stepSegment executes the worker's next segment and advances its cursor;
// when the task's last segment completes, the cursor is cleared so the
// next heap visit fetches a new task.
func stepSegment(st *state, w *worker, p int) {
	// Skip any empty segment positions.
	for w.segIdx < len(w.cur.Children) {
		seg := w.cur.Children[w.segIdx]
		if w.repIdx >= seg.Reps() {
			w.segIdx++
			w.repIdx = 0
			continue
		}
		w.repIdx++
		execSegment(st, w, seg, p)
		return
	}
	// Task finished: join any nowait nested sections it started.
	if w.pendingJoin > w.time {
		w.time = w.pendingJoin
	}
	w.pendingJoin = 0
	w.cur = nil
}

// fetchState is the shared iteration counter of dynamic/guided schedules.
type fetchState struct {
	tasks []taskRef
	next  int
	sched omprt.Sched
	nt    int
}

// assignStatic precomputes task queues for the static schedules.
func assignStatic(sched omprt.Sched, workers []worker, tasks []taskRef) {
	nt := len(workers)
	n := len(tasks)
	switch sched.Kind {
	case omprt.Static:
		base := n / nt
		rem := n % nt
		lo := 0
		for k := 0; k < nt; k++ {
			hi := lo + base
			if k < rem {
				hi++
			}
			workers[k].tasks = tasks[lo:hi]
			lo = hi
		}
	case omprt.StaticChunk:
		chunk := sched.Chunk
		if chunk < 1 {
			chunk = 1
		}
		for k := 0; k < nt; k++ {
			for lo := k * chunk; lo < n; lo += nt * chunk {
				hi := lo + chunk
				if hi > n {
					hi = n
				}
				workers[k].tasks = append(workers[k].tasks, tasks[lo:hi]...)
			}
		}
	}
}

// nextTask yields the worker's next task and its dispatch overhead.
func nextTask(st *state, w *worker, shared *fetchState) (taskRef, clock.Cycles, bool) {
	switch st.sched.Kind {
	case omprt.Static, omprt.StaticChunk:
		if w.pos >= len(w.tasks) {
			return taskRef{}, 0, false
		}
		tr := w.tasks[w.pos]
		w.pos++
		return tr, st.ov.StaticDispatch, true
	case omprt.Dynamic:
		if shared.next >= len(shared.tasks) {
			return taskRef{}, 0, false
		}
		tr := shared.tasks[shared.next]
		shared.next++
		return tr, st.ov.Dispatch, true
	case omprt.Guided:
		// Guided hands out shrinking chunks; the FF emulates it at
		// task granularity, charging the dispatch once per chunk.
		if shared.next >= len(shared.tasks) {
			return taskRef{}, 0, false
		}
		remaining := len(shared.tasks) - shared.next
		c := remaining / (2 * shared.nt)
		if c < 1 {
			c = 1
		}
		// Return one task; amortize dispatch over the chunk.
		tr := shared.tasks[shared.next]
		shared.next++
		d := clock.Cycles(math.Ceil(float64(st.ov.Dispatch) / float64(c)))
		return tr, d, true
	}
	return taskRef{}, 0, false
}

// scaled applies the burden factor to a profiled length.
func (st *state) scaled(l clock.Cycles) clock.Cycles {
	if st.burden == 1 {
		return l
	}
	return clock.Cycles(float64(l)*st.burden + 0.5)
}

// scaledOn is scaled for a specific abstract CPU: on a heterogeneous
// machine the burden-scaled length is additionally divided by the CPU's
// speed ratio. With nil speeds it is exactly scaled, so homogeneous
// emulations keep the legacy arithmetic bit-for-bit.
func (st *state) scaledOn(cpu int, l clock.Cycles) clock.Cycles {
	if st.speeds == nil {
		return st.scaled(l)
	}
	sp := st.speeds[cpu%len(st.speeds)]
	return clock.Cycles(float64(l)*st.burden/sp + 0.5)
}

// execSegment executes one U/L/Sec segment on worker w.
func execSegment(st *state, w *worker, seg *tree.Node, p int) {
	switch seg.Kind {
	case tree.U, tree.W:
		// The FF has no notion of a freed CPU: an I/O wait advances
		// the worker clock like computation. The machine-backed
		// emulators model W faithfully (cores freed, real core
		// limit); the FF is accurate only while workers <= CPUs.
		start := w.time
		w.time += st.scaledOn(w.cpu, seg.Len)
		if st.tracer != nil {
			st.tracer.Exec(obs.ExecEvent{Kind: obs.KFFStep, Time: start, End: w.time, Core: w.cpu, Thread: w.id, Lock: -1})
		}
	case tree.L:
		t := w.time
		if f := st.lockFree[seg.LockID]; f > t {
			t = f
		}
		t += st.ov.LockEnter + st.scaledOn(w.cpu, seg.Len) + st.ov.LockExit
		st.lockFree[seg.LockID] = t
		if st.tracer != nil {
			st.tracer.Exec(obs.ExecEvent{Kind: obs.KFFStep, Time: w.time, End: t, Core: w.cpu, Thread: w.id, Lock: seg.LockID})
		}
		w.time = t
	case tree.Sec:
		// Nested parallelism: emulated in place with round-robin CPU
		// assignment starting at this worker's CPU (the FF
		// limitation, §IV-D: whole nodes are placed non-preemptively,
		// which is exactly what makes Fig. 7 come out as 1.5x).
		// Nested pipeline sections use the pipeline schedule.
		var dur clock.Cycles
		if seg.Pipeline {
			dur = emulatePipeline(st, seg, w.time, p)
		} else {
			dur = emulateNested(st, seg, w.time, w.cpu, p)
		}
		if seg.NoWait {
			// OpenMP nowait: the enclosing task proceeds without
			// the implicit barrier; the section is joined at the
			// end of the task instead.
			if end := w.time + dur; end > w.pendingJoin {
				w.pendingJoin = end
			}
		} else {
			w.time += dur
		}
	}
}

// runTask executes a whole task synchronously (used for nested sections,
// where the FF does not interleave with the outer workers).
func runTask(st *state, w *worker, task *tree.Node, p int) {
	for _, seg := range task.Children {
		for r := 0; r < seg.Reps(); r++ {
			execSegment(st, w, seg, p)
		}
	}
	if w.pendingJoin > w.time {
		w.time = w.pendingJoin
	}
	w.pendingJoin = 0
}

// emulateNested runs a nested section by assigning its tasks round-robin
// over all CPUs starting at homeCPU, each task starting no earlier than
// both the section start and its CPU's availability. It returns the
// section duration.
func emulateNested(st *state, sec *tree.Node, start clock.Cycles, homeCPU, p int) clock.Cycles {
	sc := getScratch()
	defer putScratch(sc)
	sc.tasks = appendTasks(sc.tasks[:0], sec)
	tasks := sc.tasks
	if len(tasks) == 0 {
		return 0
	}
	begin := start + st.ov.ForkPerThread*clock.Cycles(minInt(p, len(tasks))-1)
	var finish clock.Cycles
	var nw worker
	for j, tr := range tasks {
		st.tick()
		cpu := (homeCPU + j) % p
		t := begin + st.ov.WorkerInit
		if a := st.avail[cpu]; a > t {
			t = a
		}
		t += st.ov.Dispatch
		nw = worker{id: j, cpu: cpu, time: t}
		runTask(st, &nw, tr.node, p)
		st.avail[cpu] = nw.time
		if nw.time > finish {
			finish = nw.time
		}
	}
	return finish - start + st.ov.JoinBarrier
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
