package ff

import (
	"testing"

	"prophet/internal/clock"
	"prophet/internal/omprt"
	"prophet/internal/tree"
)

func pipeTree(n int, stages ...clock.Cycles) *tree.Node {
	tasks := make([]*tree.Node, n)
	for i := range tasks {
		segs := make([]*tree.Node, len(stages))
		for s, l := range stages {
			segs[s] = tree.NewU(l)
		}
		tasks[i] = tree.NewTask("it", segs...)
	}
	sec := tree.NewSec("pipe", tasks...)
	sec.Pipeline = true
	return tree.NewRoot(sec)
}

func TestPipelineBalancedTwoStages(t *testing.T) {
	root := pipeTree(32, 1_000, 1_000)
	e := &Emulator{Threads: 2, Sched: omprt.SchedStatic}
	got := e.PredictTime(root)
	// Fill (1000) + 32 iterations through a 1000-cycle stage = 33000.
	if got != 33_000 {
		t.Fatalf("predicted = %d, want 33000", got)
	}
	if s := e.Speedup(root); s < 1.9 {
		t.Fatalf("pipeline speedup = %.2f, want ~1.94", s)
	}
}

func TestPipelineBottleneck(t *testing.T) {
	root := pipeTree(20, 1_000, 3_000)
	e := &Emulator{Threads: 2, Sched: omprt.SchedStatic}
	got := e.PredictTime(root)
	// 1000 fill + 20*3000 bottleneck = 61000.
	if got != 61_000 {
		t.Fatalf("predicted = %d, want 61000", got)
	}
}

func TestPipelineVsOrdinarySection(t *testing.T) {
	// The same tasks WITHOUT the pipeline flag are independent: a
	// 4-thread FF must beat the 2-stage pipeline bound.
	plain := pipeTree(24, 1_000, 1_000)
	plain.TopLevelSections()[0].Pipeline = false
	piped := pipeTree(24, 1_000, 1_000)
	e := &Emulator{Threads: 4, Sched: omprt.SchedStatic}
	sPlain := e.Speedup(plain)
	sPipe := e.Speedup(piped)
	if sPlain < 3.9 {
		t.Fatalf("independent loop speedup = %.2f, want ~4", sPlain)
	}
	// Pipeline parallelism is capped by its depth (2 stages).
	if sPipe > 2.01 {
		t.Fatalf("pipeline speedup = %.2f exceeds depth bound 2", sPipe)
	}
}

func TestPipelineDepthCapsThreads(t *testing.T) {
	root := pipeTree(16, 500, 500, 500)
	e2 := &Emulator{Threads: 3, Sched: omprt.SchedStatic}
	e12 := &Emulator{Threads: 12, Sched: omprt.SchedStatic}
	if a, b := e2.PredictTime(root), e12.PredictTime(root); a != b {
		t.Fatalf("threads beyond depth changed prediction: %d vs %d", a, b)
	}
}

func TestPipelineLockedStage(t *testing.T) {
	// A stage that holds a lock is already serialized by the pipeline's
	// in-order property, so the prediction must not double-penalize.
	tasks := make([]*tree.Node, 10)
	for i := range tasks {
		tasks[i] = tree.NewTask("it", tree.NewU(1_000), tree.NewL(1, 500))
	}
	sec := tree.NewSec("pipe", tasks...)
	sec.Pipeline = true
	root := tree.NewRoot(sec)
	e := &Emulator{Threads: 2, Sched: omprt.SchedStatic}
	got := e.PredictTime(root)
	// Stage 0 bound: 10*1000; stage 1 drains 500 after: >= 10500.
	if got < 10_500 || got > 12_000 {
		t.Fatalf("locked-stage pipeline = %d, want ~10500", got)
	}
}

func TestNestedPipelineInsideTask(t *testing.T) {
	inner := tree.NewSec("pipe",
		tree.NewTask("i", tree.NewU(1_000), tree.NewU(1_000)),
		tree.NewTask("i", tree.NewU(1_000), tree.NewU(1_000)),
		tree.NewTask("i", tree.NewU(1_000), tree.NewU(1_000)),
	)
	inner.Pipeline = true
	root := tree.NewRoot(tree.NewSec("outer", tree.NewTask("t", inner)))
	e := &Emulator{Threads: 4, Sched: omprt.SchedStatic}
	got := e.PredictTime(root)
	// Pipeline of 3 iterations, 2 stages: fill 1000 + 3*1000 = 4000.
	if got != 4_000 {
		t.Fatalf("nested pipeline predicted = %d, want 4000", got)
	}
}
