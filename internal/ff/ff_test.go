package ff

import (
	"math"
	"testing"

	"prophet/internal/clock"
	"prophet/internal/omprt"
	"prophet/internal/tree"
)

// figure5 builds the paper's Fig. 5 loop: three unequal iterations with a
// critical section, to be parallelized on a dual-core.
//
//	I0: U150  L450  U50   (650)
//	I1: U100  L300  U200  (600)
//	I2: U150  U50   U50   (250)
func figure5() *tree.Node {
	i0 := tree.NewTask("i0", tree.NewU(150), tree.NewL(1, 450), tree.NewU(50))
	i1 := tree.NewTask("i1", tree.NewU(100), tree.NewL(1, 300), tree.NewU(200))
	i2 := tree.NewTask("i2", tree.NewU(150), tree.NewU(50), tree.NewU(50))
	return tree.NewRoot(tree.NewSec("loop", i0, i1, i2))
}

func emu(threads int, sched omprt.Sched) *Emulator {
	return &Emulator{Threads: threads, Sched: sched}
}

// TestFigure5Schedules reproduces the paper's Fig. 5 walkthrough with zero
// parallel overhead (the paper's ε): (static,1) -> 1150 cycles,
// (static) -> 1250, (dynamic,1) -> 900 (the paper quotes 950 because its ε
// includes dynamic-scheduling overhead; with ε = 0 the hand-computed
// makespan is 900).
func TestFigure5Schedules(t *testing.T) {
	root := figure5()
	serial := root.TotalLen()
	if serial != 1500 {
		t.Fatalf("serial length = %d, want 1500", serial)
	}
	cases := []struct {
		sched omprt.Sched
		want  clock.Cycles
	}{
		{omprt.SchedStatic1, 1150},
		{omprt.SchedStatic, 1250},
		{omprt.SchedDynamic1, 900},
	}
	for _, c := range cases {
		got := emu(2, c.sched).PredictTime(root)
		if got != c.want {
			t.Errorf("%v: predicted = %d, want %d", c.sched, got, c.want)
		}
	}
	// Speedups as in the figure (ε=0): 1.30, 1.20, 1.67.
	if s := emu(2, omprt.SchedStatic1).Speedup(root); math.Abs(s-1500.0/1150) > 1e-9 {
		t.Errorf("static,1 speedup = %g", s)
	}
}

// TestFigure5WithDynamicOverhead shows that charging the dynamic dispatch
// overhead moves the (dynamic,1) estimate toward the paper's 950 figure.
func TestFigure5WithDynamicOverhead(t *testing.T) {
	root := figure5()
	e := emu(2, omprt.SchedDynamic1)
	e.Ov = omprt.Overheads{Dispatch: 25}
	got := e.PredictTime(root)
	if got <= 900 || got > 1000 {
		t.Fatalf("dynamic,1 with dispatch overhead = %d, want (900, 1000]", got)
	}
}

// figure7 builds the two-level nested tree of Fig. 7: an outer section of
// two tasks, each containing only a nested two-task section; lengths are
// 10/5 and 5/10 units (scaled so the numbers stay integral).
func figure7(scale clock.Cycles) *tree.Node {
	la := tree.NewSec("LoopA",
		tree.NewTask("a0", tree.NewU(10*scale)),
		tree.NewTask("a1", tree.NewU(5*scale)),
	)
	lb := tree.NewSec("LoopB",
		tree.NewTask("b0", tree.NewU(5*scale)),
		tree.NewTask("b1", tree.NewU(10*scale)),
	)
	return tree.NewRoot(tree.NewSec("Loop1",
		tree.NewTask("t0", la),
		tree.NewTask("t1", lb),
	))
}

// TestFigure7FFLimitation verifies the FF reproduces its documented
// limitation: predicted speedup 1.5 on a dual-core for the Fig. 7 tree
// whose real (preemptively scheduled) speedup is 2.0.
func TestFigure7FFLimitation(t *testing.T) {
	root := figure7(1)
	if root.TotalLen() != 30 {
		t.Fatalf("serial = %d, want 30", root.TotalLen())
	}
	got := emu(2, omprt.SchedStatic1).PredictTime(root)
	if got != 20 {
		t.Fatalf("FF predicted %d, want 20 (speedup 1.5 as the paper reports)", got)
	}
	if s := emu(2, omprt.SchedStatic1).Speedup(root); math.Abs(s-1.5) > 1e-9 {
		t.Fatalf("FF speedup = %g, want 1.5", s)
	}
}

func TestPerfectlyBalancedLoopScales(t *testing.T) {
	tasks := make([]*tree.Node, 12)
	for i := range tasks {
		tasks[i] = tree.NewTask("t", tree.NewU(10_000))
	}
	root := tree.NewRoot(tree.NewSec("s", tasks...))
	for _, p := range []int{1, 2, 3, 4, 6, 12} {
		s := emu(p, omprt.SchedStatic).Speedup(root)
		if math.Abs(s-float64(p)) > 1e-9 {
			t.Errorf("p=%d: speedup = %g, want %d", p, s, p)
		}
	}
}

func TestAmdahlSerialFraction(t *testing.T) {
	// Half the program serial: speedup on many cores approaches 2.
	root := tree.NewRoot(
		tree.NewU(100_000),
		tree.NewSec("s",
			tree.NewTask("t", tree.NewU(25_000)),
			tree.NewTask("t", tree.NewU(25_000)),
			tree.NewTask("t", tree.NewU(25_000)),
			tree.NewTask("t", tree.NewU(25_000)),
		),
	)
	s := emu(4, omprt.SchedStatic).Speedup(root)
	want := 200_000.0 / 125_000.0 // 1.6
	if math.Abs(s-want) > 1e-9 {
		t.Fatalf("speedup = %g, want %g", s, want)
	}
}

func TestBurdenFactorSlowsSection(t *testing.T) {
	tasks := make([]*tree.Node, 4)
	for i := range tasks {
		tasks[i] = tree.NewTask("t", tree.NewU(10_000))
	}
	sec := tree.NewSec("s", tasks...)
	sec.Burden = map[int]float64{4: 1.5}
	root := tree.NewRoot(sec)

	plain := emu(4, omprt.SchedStatic)
	plain.UseBurden = false
	if s := plain.Speedup(root); math.Abs(s-4) > 1e-9 {
		t.Fatalf("Pred speedup = %g, want 4", s)
	}
	bur := emu(4, omprt.SchedStatic)
	bur.UseBurden = true
	if s := bur.Speedup(root); math.Abs(s-4/1.5) > 1e-6 {
		t.Fatalf("PredM speedup = %g, want %g", s, 4/1.5)
	}
}

func TestRepeatCompressedTasksEmulate(t *testing.T) {
	// A compressed uniform loop must emulate identically to the expanded
	// one.
	expanded := make([]*tree.Node, 100)
	for i := range expanded {
		expanded[i] = tree.NewTask("t", tree.NewU(1_000))
	}
	rootA := tree.NewRoot(tree.NewSec("s", expanded...))
	ctask := tree.NewTask("t", tree.NewU(1_000))
	ctask.Repeat = 100
	rootB := tree.NewRoot(tree.NewSec("s", ctask))
	for _, sched := range []omprt.Sched{omprt.SchedStatic, omprt.SchedStatic1, omprt.SchedDynamic1} {
		a := emu(8, sched).PredictTime(rootA)
		b := emu(8, sched).PredictTime(rootB)
		if a != b {
			t.Errorf("%v: expanded %d != compressed %d", sched, a, b)
		}
	}
}

func TestRepeatedSegmentsInsideTask(t *testing.T) {
	// Compression can also produce repeated U segments inside a task.
	seg := tree.NewU(500)
	seg.Repeat = 4
	root := tree.NewRoot(tree.NewSec("s", tree.NewTask("t", seg)))
	got := emu(1, omprt.SchedStatic).PredictTime(root)
	if got != 2_000 {
		t.Fatalf("predicted = %d, want 2000", got)
	}
}

func TestGuidedSchedule(t *testing.T) {
	tasks := make([]*tree.Node, 64)
	for i := range tasks {
		tasks[i] = tree.NewTask("t", tree.NewU(1_000))
	}
	root := tree.NewRoot(tree.NewSec("s", tasks...))
	s := emu(4, omprt.SchedGuided).Speedup(root)
	if s < 3.5 || s > 4.0+1e-9 {
		t.Fatalf("guided speedup = %g, want ~4", s)
	}
}

func TestMoreThreadsThanTasks(t *testing.T) {
	root := tree.NewRoot(tree.NewSec("s",
		tree.NewTask("t", tree.NewU(1_000)),
		tree.NewTask("t", tree.NewU(1_000)),
	))
	s := emu(12, omprt.SchedStatic).Speedup(root)
	if math.Abs(s-2) > 1e-9 {
		t.Fatalf("speedup = %g, want 2 (only 2 tasks)", s)
	}
}

func TestEmptyAndDegenerate(t *testing.T) {
	empty := tree.NewRoot()
	if got := emu(4, omprt.SchedStatic).PredictTime(empty); got != 0 {
		t.Errorf("empty tree predicted %d", got)
	}
	if s := emu(4, omprt.SchedStatic).Speedup(empty); s != 1 {
		t.Errorf("empty tree speedup %g", s)
	}
	emptySec := tree.NewRoot(tree.NewSec("s"))
	if got := emu(4, omprt.SchedStatic).PredictTime(emptySec); got != 0 {
		t.Errorf("empty section predicted %d", got)
	}
	zeroThreads := &Emulator{Threads: 0, Sched: omprt.SchedStatic}
	one := tree.NewRoot(tree.NewSec("s", tree.NewTask("t", tree.NewU(100))))
	if got := zeroThreads.PredictTime(one); got != 100 {
		t.Errorf("0-thread emulator predicted %d, want 100", got)
	}
}

func TestOverheadsReduceSpeedup(t *testing.T) {
	tasks := make([]*tree.Node, 1000)
	for i := range tasks {
		tasks[i] = tree.NewTask("t", tree.NewU(500))
	}
	root := tree.NewRoot(tree.NewSec("s", tasks...))
	ideal := emu(4, omprt.SchedDynamic1).Speedup(root)
	loaded := &Emulator{Threads: 4, Sched: omprt.SchedDynamic1, Ov: omprt.DefaultOverheads()}
	s := loaded.Speedup(root)
	if s >= ideal {
		t.Fatalf("overheads did not reduce speedup: %g vs %g", s, ideal)
	}
	// With 150-cycle dispatch per 500-cycle task, efficiency drops hard.
	if s > 3.5 {
		t.Errorf("tiny-task speedup = %g, want visibly degraded", s)
	}
}

func TestLockContentionLimitsSpeedup(t *testing.T) {
	// Every task spends 80% of its time in the same lock: speedup is
	// bounded near 1/0.8 regardless of thread count.
	tasks := make([]*tree.Node, 24)
	for i := range tasks {
		tasks[i] = tree.NewTask("t", tree.NewU(200), tree.NewL(1, 800))
	}
	root := tree.NewRoot(tree.NewSec("s", tasks...))
	s := emu(12, omprt.SchedStatic1).Speedup(root)
	if s > 1.3 {
		t.Fatalf("lock-bound speedup = %g, want <= ~1.25", s)
	}
	if s < 1.0 {
		t.Fatalf("speedup below 1: %g", s)
	}
}

func TestMultipleLocksIndependent(t *testing.T) {
	// Two disjoint locks: pairs of tasks serialize within their lock but
	// the two pairs run in parallel.
	mk := func(lock int) *tree.Node {
		return tree.NewTask("t", tree.NewL(lock, 1_000))
	}
	root := tree.NewRoot(tree.NewSec("s", mk(1), mk(2), mk(1), mk(2)))
	got := emu(4, omprt.SchedStatic1).PredictTime(root)
	if got != 2_000 {
		t.Fatalf("two-lock makespan = %d, want 2000", got)
	}
}

func TestMultipleTopLevelSections(t *testing.T) {
	sec := func() *tree.Node {
		return tree.NewSec("s",
			tree.NewTask("t", tree.NewU(1_000)),
			tree.NewTask("t", tree.NewU(1_000)),
		)
	}
	root := tree.NewRoot(tree.NewU(500), sec(), tree.NewU(500), sec())
	got := emu(2, omprt.SchedStatic).PredictTime(root)
	// Each section halves to 1000; serial parts stay: 500+1000+500+1000.
	if got != 3_000 {
		t.Fatalf("predicted = %d, want 3000", got)
	}
}

// TestSpeedsHeterogeneous: per-CPU speed ratios scale computation on the
// abstract CPUs. With zero overheads and (static,1) on two CPUs, Fig. 5's
// iterations land I0,I2 on CPU 0 and I1 on CPU 1; doubling CPU 0's clock
// halves its work, and nil Speeds stays bit-identical to the legacy path.
func TestSpeedsHeterogeneous(t *testing.T) {
	root := figure5()
	base := emu(2, omprt.SchedStatic1).PredictTime(root)

	// Speeds of all ones must not change anything even though the scaled
	// path runs (division by 1 then +0.5 rounding matches st.scaled).
	ones := &Emulator{Threads: 2, Sched: omprt.SchedStatic1, Speeds: []float64{1, 1}}
	if got := ones.PredictTime(root); got != base {
		t.Errorf("unit speeds predicted %d, want %d (legacy)", got, base)
	}

	// A 2x CPU 0: I0 (650) and I2 (250) take 325 and 125 cycles of clock;
	// the lock FIFO still serializes L segments in pseudo-time order.
	fast := &Emulator{Threads: 2, Sched: omprt.SchedStatic1, Speeds: []float64{2, 1}}
	gotFast := fast.PredictTime(root)
	if gotFast >= base {
		t.Errorf("2x CPU 0 predicted %d, want < %d", gotFast, base)
	}

	// Slowing a CPU makes the section slower, and the asymmetric
	// prediction is deterministic.
	slow := &Emulator{Threads: 2, Sched: omprt.SchedStatic1, Speeds: []float64{1, 0.5}}
	gotSlow := slow.PredictTime(root)
	if gotSlow <= base {
		t.Errorf("0.5x CPU 1 predicted %d, want > %d", gotSlow, base)
	}
	for i := 0; i < 3; i++ {
		if again := fast.PredictTime(root); again != gotFast {
			t.Fatalf("asymmetric FF not deterministic: %d vs %d", again, gotFast)
		}
	}
}
