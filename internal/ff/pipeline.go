package ff

import (
	"prophet/internal/clock"
	"prophet/internal/pipesim"
	"prophet/internal/tree"
)

// This file emulates pipeline-parallel sections — the paper's §VIII
// extension ("pipelining can be easily supported by extending annotations
// [23] and the emulation algorithm"), after Thies et al.'s coarse-grained
// pipeline parallelism for C loops.
//
// Model: a pipeline section's tasks are loop iterations; the segments of
// each task are stages. Stage s of iteration i may start only after
//
//	stage s-1 of iteration i   (data flows through the iteration), and
//	stage s   of iteration i-1 (each stage processes iterations in order).
//
// Stages are bound to workers round-robin (stage s -> worker s mod nt),
// the standard decoupled-software-pipelining assignment, so a stage also
// waits for its worker's previous work. L stages additionally serialize on
// their lock.

// emulatePipeline fast-forwards one pipeline section starting at start on
// p CPUs and returns its duration including fork/join overhead. Stages
// are fused into contiguous, weight-balanced groups, one worker per group
// (pipesim.PartitionStages), so the FF and the machine execution model the
// same assignment.
func emulatePipeline(st *state, sec *tree.Node, start clock.Cycles, p int) clock.Cycles {
	tasks := expandTasks(sec)
	n := len(tasks)
	if n == 0 {
		return 0
	}
	groups := pipesim.PartitionStages(sec, p)
	depth := len(groups)
	if depth == 0 {
		return 0
	}
	nt := 0
	for _, g := range groups {
		if g+1 > nt {
			nt = g + 1
		}
	}
	begin := start + st.ov.ForkPerThread*clock.Cycles(nt-1) + st.ov.WorkerInit

	workerTime := make([]clock.Cycles, nt)
	for w := range workerTime {
		workerTime[w] = begin
	}
	stageFinish := make([]clock.Cycles, depth) // finish of stage s, previous iteration
	var finish clock.Cycles
	for _, tr := range tasks {
		st.tick()
		slots := pipesim.StageSlots(tr.node)
		var prevStageEnd clock.Cycles = begin
		for s, seg := range slots {
			if s >= depth {
				break
			}
			w := groups[s]
			t := workerTime[w]
			if prevStageEnd > t {
				t = prevStageEnd
			}
			if stageFinish[s] > t {
				t = stageFinish[s]
			}
			t += st.ov.Dispatch
			switch seg.Kind {
			case tree.L:
				if f := st.lockFree[seg.LockID]; f > t {
					t = f
				}
				t += st.ov.LockEnter + st.scaledOn(w, seg.Len) + st.ov.LockExit
				st.lockFree[seg.LockID] = t
			default: // U
				t += st.scaledOn(w, seg.Len)
			}
			workerTime[w] = t
			stageFinish[s] = t
			prevStageEnd = t
		}
		if prevStageEnd > finish {
			finish = prevStageEnd
		}
	}
	return finish - start + st.ov.JoinBarrier
}
