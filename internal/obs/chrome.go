package obs

import (
	"encoding/json"
	"fmt"
	"io"
)

// Chrome trace_event export. The format is the Trace Event Format used by
// chrome://tracing and Perfetto: a JSON object with a "traceEvents" array
// of complete ("X"), instant ("i") and metadata ("M") events. Machine
// events render as process 0 ("machine") with one lane (tid) per
// simulated core; fast-forward emulator steps render as process 1 ("ff")
// with one lane per abstract CPU. Timestamps are virtual cycles written
// into the ts/dur microsecond fields, so 1 cycle displays as 1 µs.

const (
	// chromePIDMachine is the trace process of simulated-machine events.
	chromePIDMachine = 0
	// chromePIDFF is the trace process of fast-forward emulator events.
	chromePIDFF = 1
	// chromeTIDScheduler is the lane for instants that occur while the
	// thread holds no core (e.g. an unblock into the ready queue).
	chromeTIDScheduler = 1_000_000
)

// chromeEvent is one trace_event entry.
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Phase string         `json:"ph"`
	TS    int64          `json:"ts"`
	Dur   int64          `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents []chromeEvent `json:"traceEvents"`
}

// WriteChromeTrace exports the buffered events as Chrome trace_event
// JSON. The output always validates against ValidateChromeTrace.
func (b *TraceBuffer) WriteChromeTrace(w io.Writer) error {
	events := b.Events()
	out := chromeTrace{TraceEvents: make([]chromeEvent, 0, len(events)+8)}

	meta := func(pid int, name string) {
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: "process_name", Phase: "M", PID: pid,
			Args: map[string]any{"name": name},
		})
	}
	lane := func(pid, tid int, name string) {
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: "thread_name", Phase: "M", PID: pid, TID: tid,
			Args: map[string]any{"name": name},
		})
	}

	// Metadata: name the processes and every lane that will appear.
	meta(chromePIDMachine, "machine")
	for _, c := range b.Cores() {
		lane(chromePIDMachine, c, fmt.Sprintf("core %d", c))
	}
	ffCPUs := map[int]bool{}
	needSched := false
	for _, ev := range events {
		switch {
		case ev.Kind == KFFStep:
			ffCPUs[ev.Core] = true
		case ev.Core < 0:
			needSched = true
		}
	}
	if len(ffCPUs) > 0 {
		meta(chromePIDFF, "ff")
		for c := range ffCPUs {
			lane(chromePIDFF, c, fmt.Sprintf("cpu %d", c))
		}
	}
	if needSched {
		lane(chromePIDMachine, chromeTIDScheduler, "scheduler")
	}

	for _, ev := range events {
		ce := chromeEvent{
			TS:   int64(ev.Time),
			PID:  chromePIDMachine,
			TID:  ev.Core,
			Args: map[string]any{"thread": ev.Thread},
		}
		if ev.Core < 0 {
			ce.TID = chromeTIDScheduler
		}
		switch ev.Kind {
		case KSlice:
			ce.Name = fmt.Sprintf("thread %d", ev.Thread)
			ce.Cat = "exec"
			ce.Phase = "X"
			ce.Dur = int64(ev.End - ev.Time)
		case KFFStep:
			ce.Name = fmt.Sprintf("worker %d", ev.Thread)
			ce.Cat = "ff"
			ce.Phase = "X"
			ce.PID = chromePIDFF
			ce.TID = ev.Core
			ce.Dur = int64(ev.End - ev.Time)
		default:
			ce.Name = ev.Kind.String()
			ce.Cat = "sched"
			ce.Phase = "i"
			ce.Scope = "t"
			if ev.Lock >= 0 {
				ce.Cat = "sync"
				ce.Args["lock"] = ev.Lock
			}
		}
		out.TraceEvents = append(out.TraceEvents, ce)
	}

	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// knownPhases are the trace_event phases the validator accepts; this
// exporter only emits X, i and M, but files from other tools may carry
// the full set.
var knownPhases = map[string]bool{
	"B": true, "E": true, "X": true, "i": true, "I": true, "C": true,
	"b": true, "e": true, "n": true, "s": true, "t": true, "f": true,
	"M": true, "P": true, "O": true, "N": true, "D": true,
}

// ValidateChromeTrace checks data against the Chrome trace-event schema:
// a JSON object with a traceEvents array whose entries carry a name, a
// known phase, pid/tid, non-negative timestamps, non-negative durations
// on complete events, and an args.name on metadata events. It returns
// nil for a loadable trace and a descriptive error otherwise.
func ValidateChromeTrace(data []byte) error {
	var raw struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &raw); err != nil {
		return fmt.Errorf("obs: trace is not a JSON object: %w", err)
	}
	if raw.TraceEvents == nil {
		return fmt.Errorf("obs: trace has no traceEvents array")
	}
	for i, msg := range raw.TraceEvents {
		var ev struct {
			Name  *string        `json:"name"`
			Phase *string        `json:"ph"`
			TS    *float64       `json:"ts"`
			Dur   *float64       `json:"dur"`
			PID   *float64       `json:"pid"`
			TID   *float64       `json:"tid"`
			Args  map[string]any `json:"args"`
		}
		if err := json.Unmarshal(msg, &ev); err != nil {
			return fmt.Errorf("obs: traceEvents[%d] malformed: %w", i, err)
		}
		if ev.Name == nil || *ev.Name == "" {
			return fmt.Errorf("obs: traceEvents[%d] has no name", i)
		}
		if ev.Phase == nil || !knownPhases[*ev.Phase] {
			return fmt.Errorf("obs: traceEvents[%d] (%s) has unknown phase %v", i, *ev.Name, ev.Phase)
		}
		if ev.PID == nil {
			return fmt.Errorf("obs: traceEvents[%d] (%s) has no pid", i, *ev.Name)
		}
		switch *ev.Phase {
		case "M":
			if ev.Args == nil || ev.Args["name"] == nil {
				return fmt.Errorf("obs: traceEvents[%d] metadata event has no args.name", i)
			}
		default:
			if ev.TID == nil {
				return fmt.Errorf("obs: traceEvents[%d] (%s) has no tid", i, *ev.Name)
			}
			if ev.TS == nil || *ev.TS < 0 {
				return fmt.Errorf("obs: traceEvents[%d] (%s) has missing or negative ts", i, *ev.Name)
			}
			if *ev.Phase == "X" && ev.Dur != nil && *ev.Dur < 0 {
				return fmt.Errorf("obs: traceEvents[%d] (%s) has negative dur", i, *ev.Name)
			}
		}
	}
	return nil
}
