package obs

import (
	"bytes"
	"encoding/json"
	"os"
	"strings"
	"testing"
	"time"
)

func TestTraceBufferCollects(t *testing.T) {
	var b TraceBuffer
	b.Exec(ExecEvent{Kind: KSlice, Time: 10, End: 20, Core: 0, Thread: 1, Lock: -1})
	b.Exec(ExecEvent{Kind: KLockAcquire, Time: 20, Core: 1, Thread: 2, Lock: 7})
	b.Exec(ExecEvent{Kind: KFFStep, Time: 0, End: 5, Core: 3, Thread: 0, Lock: -1})
	if b.Len() != 3 {
		t.Fatalf("Len = %d, want 3", b.Len())
	}
	cores := b.Cores()
	if len(cores) != 2 || cores[0] != 0 || cores[1] != 1 {
		t.Fatalf("Cores = %v, want [0 1] (FF steps excluded)", cores)
	}
	b.Reset()
	if b.Len() != 0 {
		t.Fatalf("Len after Reset = %d", b.Len())
	}
}

func TestChromeExportValidates(t *testing.T) {
	var b TraceBuffer
	for core := 0; core < 4; core++ {
		b.Exec(ExecEvent{Kind: KSchedule, Time: 0, Core: core, Thread: core, Lock: -1})
		b.Exec(ExecEvent{Kind: KSlice, Time: 0, End: 100, Core: core, Thread: core, Lock: -1})
		b.Exec(ExecEvent{Kind: KExit, Time: 100, Core: core, Thread: core, Lock: -1})
	}
	b.Exec(ExecEvent{Kind: KUnblock, Time: 50, Core: -1, Thread: 9, Lock: -1})
	b.Exec(ExecEvent{Kind: KFFStep, Time: 0, End: 30, Core: 1, Thread: 2, Lock: -1})

	var buf bytes.Buffer
	if err := b.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if err := ValidateChromeTrace(buf.Bytes()); err != nil {
		t.Fatalf("exported trace fails validation: %v", err)
	}

	// One thread_name lane per machine core.
	var raw struct {
		TraceEvents []struct {
			Name  string         `json:"name"`
			Phase string         `json:"ph"`
			PID   int            `json:"pid"`
			TID   int            `json:"tid"`
			Args  map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &raw); err != nil {
		t.Fatal(err)
	}
	lanes := map[int]string{}
	for _, ev := range raw.TraceEvents {
		if ev.Phase == "M" && ev.Name == "thread_name" && ev.PID == chromePIDMachine {
			lanes[ev.TID] = ev.Args["name"].(string)
		}
	}
	for core := 0; core < 4; core++ {
		if !strings.HasPrefix(lanes[core], "core ") {
			t.Errorf("core %d lane missing or misnamed: %q (lanes %v)", core, lanes[core], lanes)
		}
	}
}

func TestValidateChromeTraceRejects(t *testing.T) {
	bad := []struct {
		name string
		data string
	}{
		{"not json", "nope"},
		{"no traceEvents", `{}`},
		{"missing name", `{"traceEvents":[{"ph":"X","ts":1,"pid":0,"tid":0}]}`},
		{"unknown phase", `{"traceEvents":[{"name":"a","ph":"Z","ts":1,"pid":0,"tid":0}]}`},
		{"missing ts", `{"traceEvents":[{"name":"a","ph":"X","pid":0,"tid":0}]}`},
		{"negative ts", `{"traceEvents":[{"name":"a","ph":"X","ts":-1,"pid":0,"tid":0}]}`},
		{"negative dur", `{"traceEvents":[{"name":"a","ph":"X","ts":1,"dur":-2,"pid":0,"tid":0}]}`},
		{"no pid", `{"traceEvents":[{"name":"a","ph":"i","ts":1,"tid":0}]}`},
		{"metadata without args.name", `{"traceEvents":[{"name":"thread_name","ph":"M","pid":0}]}`},
	}
	for _, c := range bad {
		if err := ValidateChromeTrace([]byte(c.data)); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
	if err := ValidateChromeTrace([]byte(`{"traceEvents":[]}`)); err != nil {
		t.Errorf("empty trace rejected: %v", err)
	}
}

// TestTraceFileValid validates an externally produced trace file (the CI
// observability job points TRACE_FILE at a cmd/prophet -trace artifact).
// Skipped when TRACE_FILE is unset.
func TestTraceFileValid(t *testing.T) {
	path := os.Getenv("TRACE_FILE")
	if path == "" {
		t.Skip("TRACE_FILE not set")
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateChromeTrace(data); err != nil {
		t.Fatalf("%s: %v", path, err)
	}
	// The acceptance bar: at least one machine core lane must exist.
	var raw struct {
		TraceEvents []struct {
			Name  string         `json:"name"`
			Phase string         `json:"ph"`
			PID   int            `json:"pid"`
			Args  map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &raw); err != nil {
		t.Fatal(err)
	}
	coreLanes := 0
	for _, ev := range raw.TraceEvents {
		if ev.Phase == "M" && ev.Name == "thread_name" && ev.PID == chromePIDMachine {
			if n, ok := ev.Args["name"].(string); ok && strings.HasPrefix(n, "core ") {
				coreLanes++
			}
		}
	}
	if coreLanes == 0 {
		t.Fatalf("%s: no per-core lanes in trace", path)
	}
	t.Logf("%s: %d events, %d core lanes", path, len(raw.TraceEvents), coreLanes)
}

func TestCountersAndHistograms(t *testing.T) {
	var r Registry
	c := r.Counter("sweep.cells_ok")
	c.Inc()
	c.Add(4)
	c.Add(-3) // ignored: monotonic
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("sweep.cells_ok") != c {
		t.Fatal("same name returned a different counter")
	}

	h := r.Histogram("lat")
	for _, v := range []int64{1, 2, 3, 1000} {
		h.Observe(v)
	}
	h.ObserveDuration(2 * time.Microsecond)

	s := r.Snapshot()
	if s.Counters["sweep.cells_ok"] != 5 {
		t.Fatalf("snapshot counter = %d", s.Counters["sweep.cells_ok"])
	}
	hs := s.Histograms["lat"]
	if hs.Count != 5 || hs.Min != 1 || hs.Max != 2000 {
		t.Fatalf("histogram snapshot = %+v", hs)
	}

	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var round Snapshot
	if err := json.Unmarshal(buf.Bytes(), &round); err != nil {
		t.Fatalf("snapshot JSON does not round-trip: %v", err)
	}
	if round.Counters["sweep.cells_ok"] != 5 || round.Histograms["lat"].Count != 5 {
		t.Fatalf("round-tripped snapshot = %+v", round)
	}
}

func TestNilReceiversAreNoOps(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	h := r.Histogram("y")
	tm := r.StartTimer("z")
	c.Inc()
	c.Add(10)
	h.Observe(42)
	h.ObserveDuration(time.Second)
	tm.Stop()
	if c.Value() != 0 {
		t.Fatal("nil counter has a value")
	}
	s := r.Snapshot()
	if len(s.Counters) != 0 || len(s.Histograms) != 0 {
		t.Fatalf("nil registry snapshot not empty: %+v", s)
	}
	var mt MultiTracer
	mt.Exec(ExecEvent{}) // empty fan-out: no panic
	MultiTracer{nil, nil}.Exec(ExecEvent{})
}

func TestSnapshotNames(t *testing.T) {
	var r Registry
	r.Counter("b").Inc()
	r.Counter("a").Inc()
	r.Histogram("h").Observe(1)
	cs, hs := r.Snapshot().Names()
	if len(cs) != 2 || cs[0] != "a" || cs[1] != "b" || len(hs) != 1 || hs[0] != "h" {
		t.Fatalf("Names = %v, %v", cs, hs)
	}
}
