package obs

import (
	"encoding/json"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonic counter. A nil *Counter is a valid no-op
// receiver, so instrumented code holds counter handles unconditionally
// and pays a single predictable branch when metrics are disabled.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n (negative deltas are ignored: counters are monotonic).
func (c *Counter) Add(n int64) {
	if c == nil || n <= 0 {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 for a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Histogram records an int64 value distribution in power-of-two buckets
// (bucket i counts values v with bit-length i, i.e. 2^(i-1) <= v < 2^i;
// bucket 0 counts values <= 0). Durations are recorded in nanoseconds.
// A nil *Histogram is a valid no-op receiver.
type Histogram struct {
	mu       sync.Mutex
	count    int64
	sum      int64
	min, max int64
	buckets  [65]int64
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	h.buckets[bitLen(v)]++
	h.mu.Unlock()
}

// ObserveDuration records d in nanoseconds.
func (h *Histogram) ObserveDuration(d time.Duration) {
	h.Observe(int64(d))
}

func bitLen(v int64) int {
	if v <= 0 {
		return 0
	}
	n := 0
	for v > 0 {
		v >>= 1
		n++
	}
	return n
}

// Timer times one span into a histogram; obtain one from
// Registry.StartTimer and call Stop when the span ends. The zero Timer
// (from a nil registry) is a no-op and never reads the clock.
type Timer struct {
	h     *Histogram
	start time.Time
}

// Stop records the elapsed time.
func (t Timer) Stop() {
	if t.h == nil {
		return
	}
	t.h.ObserveDuration(time.Since(t.start))
}

// Registry holds named counters and histograms. The zero value is ready
// to use; a nil *Registry is a valid disabled registry whose Counter and
// Histogram methods return nil (no-op) handles, so pipeline code
// resolves its handles once and never branches on "metrics on?" again.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	hists    map[string]*Histogram
}

// Counter returns the named counter, creating it on first use. A nil
// registry returns a nil (no-op) counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.counters == nil {
		r.counters = make(map[string]*Counter)
	}
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Histogram returns the named histogram, creating it on first use. A nil
// registry returns a nil (no-op) histogram.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.hists == nil {
		r.hists = make(map[string]*Histogram)
	}
	h := r.hists[name]
	if h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// StartTimer starts a span timed into the named duration histogram. On a
// nil registry it returns the no-op zero Timer without reading the clock.
func (r *Registry) StartTimer(name string) Timer {
	if r == nil {
		return Timer{}
	}
	return Timer{h: r.Histogram(name), start: time.Now()}
}

// HistogramSnapshot is the JSON-stable summary of one histogram.
type HistogramSnapshot struct {
	// Count is the number of observations.
	Count int64 `json:"count"`
	// Sum is the total of all observed values.
	Sum int64 `json:"sum"`
	// Min / Max / Mean summarize the distribution.
	Min  int64   `json:"min"`
	Max  int64   `json:"max"`
	Mean float64 `json:"mean"`
	// Buckets maps each power-of-two upper bound (as int64; the "<=0"
	// bucket reports bound 0) to its observation count; empty buckets
	// are omitted.
	Buckets map[int64]int64 `json:"buckets,omitempty"`
}

// Snapshot is a point-in-time, JSON-marshalable view of a registry.
type Snapshot struct {
	// Counters maps counter names to their values.
	Counters map[string]int64 `json:"counters"`
	// Histograms maps histogram names to their summaries.
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot captures the registry's current state. A nil registry
// snapshots to empty (but non-nil) maps.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, h := range r.hists {
		h.mu.Lock()
		hs := HistogramSnapshot{Count: h.count, Sum: h.sum, Min: h.min, Max: h.max}
		if h.count > 0 {
			hs.Mean = float64(h.sum) / float64(h.count)
			hs.Buckets = map[int64]int64{}
			for i, n := range h.buckets {
				if n == 0 {
					continue
				}
				bound := int64(0)
				if i > 0 && i < 63 {
					bound = int64(1) << i
				} else if i >= 63 {
					bound = math.MaxInt64
				}
				hs.Buckets[bound] = n
			}
		}
		h.mu.Unlock()
		s.Histograms[name] = hs
	}
	return s
}

// WriteJSON writes the snapshot as indented JSON with deterministic key
// order (encoding/json sorts map keys).
func (s Snapshot) WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// Names returns the sorted counter and histogram names (for tests and
// report rendering).
func (s Snapshot) Names() (counters, histograms []string) {
	for n := range s.Counters {
		counters = append(counters, n)
	}
	for n := range s.Histograms {
		histograms = append(histograms, n)
	}
	sort.Strings(counters)
	sort.Strings(histograms)
	return counters, histograms
}
