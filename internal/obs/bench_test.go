package obs

import (
	"testing"
	"time"
)

// disabledOps exercises every disabled-observability code path an
// instrumented pipeline hits: nil counter/histogram handles from a nil
// registry, the no-op timer, and the nil-tracer guard emitters use.
func disabledOps(r *Registry, tr ExecTracer, i int) {
	c := r.Counter("sweep.cells_ok")
	h := r.Histogram("stage.emulate_ns")
	c.Inc()
	c.Add(int64(i))
	h.Observe(int64(i))
	h.ObserveDuration(time.Duration(i))
	t := r.StartTimer("stage.profile_ns")
	t.Stop()
	if tr != nil { // the guard every engine emitter uses
		tr.Exec(ExecEvent{Kind: KSlice, Time: 0, End: 1, Thread: i})
	}
}

// BenchmarkObsDisabled pins the disabled-observability cost: every no-op
// hook together must allocate nothing (the CI observability job asserts
// 0 allocs/op on this benchmark).
func BenchmarkObsDisabled(b *testing.B) {
	var r *Registry   // metrics disabled
	var tr ExecTracer // tracing disabled
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		disabledOps(r, tr, i)
	}
}

// TestObsDisabledZeroAlloc is the same assertion as a plain test, so
// `go test` catches an allocation regression without running benchmarks.
func TestObsDisabledZeroAlloc(t *testing.T) {
	var r *Registry
	var tr ExecTracer
	allocs := testing.AllocsPerRun(1000, func() {
		disabledOps(r, tr, 7)
	})
	if allocs != 0 {
		t.Fatalf("disabled observability hooks allocate %.1f allocs/op, want 0", allocs)
	}
}

// BenchmarkObsEnabled is the enabled-path reference point (registry
// lookups resolved per op, the worst case for instrumented code).
func BenchmarkObsEnabled(b *testing.B) {
	r := &Registry{}
	tr := &TraceBuffer{}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		disabledOps(r, tr, i)
	}
}
