package obs

// Canonical metric names: one vocabulary shared by the pipeline stages,
// the simulator, and the sweep engine, so a metrics snapshot reads the
// same whether it came from cmd/prophet, cmd/ppexp or a library caller.
const (
	// Pipeline stage wall times (nanosecond duration histograms).
	MStageProfile   = "stage.profile_ns"
	MStageCompress  = "stage.compress_ns"
	MStageCalibrate = "stage.calibrate_ns"
	MStageEmulate   = "stage.emulate_ns"

	// Simulated-machine counters, aggregated over every machine run that
	// carried the registry.
	MSimRuns        = "sim.runs"
	MSimEvents      = "sim.events"
	MSimPreemptions = "sim.preemptions"
	// MSimHeadroom is a histogram of remaining watchdog budget
	// (MaxEvents - processed events) per run; only recorded when a
	// MaxEvents budget is armed. A shrinking minimum warns that
	// workloads are approaching their budget.
	MSimHeadroom = "sim.watchdog_headroom_events"

	// Sweep cell outcomes.
	MSweepCellsOK      = "sweep.cells_ok"
	MSweepCellsFailed  = "sweep.cells_failed"
	MSweepCellsSkipped = "sweep.cells_skipped"

	// Profile-cache traffic (sweep.Cache singleflight), aggregated over
	// every cache instrumented with the registry.
	MCacheHits   = "cache.hits"
	MCacheMisses = "cache.misses"
	// MCacheDedups counts hits that arrived while the compute was still
	// in flight and were deduplicated onto it.
	MCacheDedups = "cache.dedups"

	// Prediction-service (internal/server) request counters.
	MServerPredicts = "server.predict.requests"
	MServerSweeps   = "server.sweep.requests"
	// MServerRejected counts requests refused with 429 by the admission
	// layer (overload backpressure).
	MServerRejected = "server.rejected_overload"
	// MServerBadRequests counts requests refused with a 4xx other than
	// 429 (malformed JSON, unknown workload, invalid grid).
	MServerBadRequests = "server.bad_requests"
	// MServerImports counts workloads registered via POST /v1/workloads
	// (successful profile uploads only).
	MServerImports = "server.imports"

	// Per-endpoint request latency (nanosecond duration histograms,
	// admission to response).
	MServerPredictLatency = "server.predict.latency_ns"
	MServerSweepLatency   = "server.sweep.latency_ns"

	// Estimate-cache traffic (the server's sharded LRU over completed
	// estimates, in front of the singleflight calibration cache).
	MServerCacheHits      = "server.cache.hits"
	MServerCacheMisses    = "server.cache.misses"
	MServerCacheEvictions = "server.cache.evictions"
	// MServerFlightDedups counts cells that found an identical cell in
	// flight and waited for its result instead of recomputing.
	MServerFlightDedups = "server.flight.dedups"

	// Batching admission layer: RunCtx batches dispatched, cells carried,
	// and the per-batch cell-count distribution (coalescing quality).
	MServerBatches    = "server.batch.batches"
	MServerBatchCells = "server.batch.cells"
	MServerBatchSize  = "server.batch.size"

	// Profile import (internal/profimport): conversions run, samples
	// parsed, trie frames kept in the converted tree, and frames folded
	// away by the leaf-collapse pass (dropped/(kept+dropped) is the
	// collapse ratio).
	MImportRuns          = "import.runs"
	MImportSamples       = "import.samples"
	MImportFrames        = "import.frames"
	MImportFramesDropped = "import.frames_dropped"
)
