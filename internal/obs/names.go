package obs

// Canonical metric names: one vocabulary shared by the pipeline stages,
// the simulator, and the sweep engine, so a metrics snapshot reads the
// same whether it came from cmd/prophet, cmd/ppexp or a library caller.
const (
	// Pipeline stage wall times (nanosecond duration histograms).
	MStageProfile   = "stage.profile_ns"
	MStageCompress  = "stage.compress_ns"
	MStageCalibrate = "stage.calibrate_ns"
	MStageEmulate   = "stage.emulate_ns"

	// Simulated-machine counters, aggregated over every machine run that
	// carried the registry.
	MSimRuns        = "sim.runs"
	MSimEvents      = "sim.events"
	MSimPreemptions = "sim.preemptions"
	// MSimHeadroom is a histogram of remaining watchdog budget
	// (MaxEvents - processed events) per run; only recorded when a
	// MaxEvents budget is armed. A shrinking minimum warns that
	// workloads are approaching their budget.
	MSimHeadroom = "sim.watchdog_headroom_events"

	// Sweep cell outcomes.
	MSweepCellsOK      = "sweep.cells_ok"
	MSweepCellsFailed  = "sweep.cells_failed"
	MSweepCellsSkipped = "sweep.cells_skipped"

	// Profile-cache traffic (sweep.Cache singleflight), aggregated over
	// every cache instrumented with the registry.
	MCacheHits   = "cache.hits"
	MCacheMisses = "cache.misses"
	// MCacheDedups counts hits that arrived while the compute was still
	// in flight and were deduplicated onto it.
	MCacheDedups = "cache.dedups"
)
