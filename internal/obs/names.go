package obs

// Canonical metric names: one vocabulary shared by the pipeline stages,
// the simulator, and the sweep engine, so a metrics snapshot reads the
// same whether it came from cmd/prophet, cmd/ppexp or a library caller.
const (
	// Pipeline stage wall times (nanosecond duration histograms).
	MStageProfile   = "stage.profile_ns"
	MStageCompress  = "stage.compress_ns"
	MStageCalibrate = "stage.calibrate_ns"
	MStageEmulate   = "stage.emulate_ns"

	// Simulated-machine counters, aggregated over every machine run that
	// carried the registry.
	MSimRuns        = "sim.runs"
	MSimEvents      = "sim.events"
	MSimPreemptions = "sim.preemptions"
	// MSimHeadroom is a histogram of remaining watchdog budget
	// (MaxEvents - processed events) per run; only recorded when a
	// MaxEvents budget is armed. A shrinking minimum warns that
	// workloads are approaching their budget.
	MSimHeadroom = "sim.watchdog_headroom_events"

	// Sweep cell outcomes.
	MSweepCellsOK      = "sweep.cells_ok"
	MSweepCellsFailed  = "sweep.cells_failed"
	MSweepCellsSkipped = "sweep.cells_skipped"

	// Causal advisor (prophet.AdviseCtx): advisor runs, candidate
	// regions enumerated across them, regions whose experiment predicted
	// no gain (Marginal <= 1, the anti-recommendations), and end-to-end
	// advisor wall time.
	MAdviseRuns     = "advise.runs"
	MAdviseRegions  = "advise.regions"
	MAdviseAntiRecs = "advise.anti_recommendations"
	MAdviseLatency  = "advise.latency_ns"

	// Profile-cache traffic (sweep.Cache singleflight), aggregated over
	// every cache instrumented with the registry.
	MCacheHits   = "cache.hits"
	MCacheMisses = "cache.misses"
	// MCacheDedups counts hits that arrived while the compute was still
	// in flight and were deduplicated onto it.
	MCacheDedups = "cache.dedups"

	// Prediction-service (internal/server) request counters.
	MServerPredicts = "server.predict.requests"
	MServerSweeps   = "server.sweep.requests"
	MServerAdvises  = "server.advise.requests"
	// MServerRejected counts requests refused with 429 by the admission
	// layer (overload backpressure).
	MServerRejected = "server.rejected_overload"
	// MServerBadRequests counts requests refused with a 4xx other than
	// 429 (malformed JSON, unknown workload, invalid grid).
	MServerBadRequests = "server.bad_requests"
	// MServerImports counts workloads registered via POST /v1/workloads
	// (successful profile uploads only).
	MServerImports = "server.imports"

	// Per-endpoint request latency (nanosecond duration histograms,
	// admission to response).
	MServerPredictLatency = "server.predict.latency_ns"
	MServerSweepLatency   = "server.sweep.latency_ns"
	MServerAdviseLatency  = "server.advise.latency_ns"

	// Estimate-cache traffic (the server's sharded LRU over completed
	// estimates, in front of the singleflight calibration cache).
	MServerCacheHits      = "server.cache.hits"
	MServerCacheMisses    = "server.cache.misses"
	MServerCacheEvictions = "server.cache.evictions"
	// MServerFlightDedups counts cells that found an identical cell in
	// flight and waited for its result instead of recomputing.
	MServerFlightDedups = "server.flight.dedups"

	// Batching admission layer: RunCtx batches dispatched, cells carried,
	// and the per-batch cell-count distribution (coalescing quality).
	MServerBatches    = "server.batch.batches"
	MServerBatchCells = "server.batch.cells"
	MServerBatchSize  = "server.batch.size"

	// Profile import (internal/profimport): conversions run, samples
	// parsed, trie frames kept in the converted tree, and frames folded
	// away by the leaf-collapse pass (dropped/(kept+dropped) is the
	// collapse ratio).
	MImportRuns          = "import.runs"
	MImportSamples       = "import.samples"
	MImportFrames        = "import.frames"
	MImportFramesDropped = "import.frames_dropped"

	// Cluster serving (internal/cluster): cell routing outcomes. A cell
	// whose ring owner is this replica is served from the local stack
	// (cells_local); a cell owned by a peer is forwarded (cells_remote);
	// a cell whose remote owners were all exhausted degrades to local
	// computation (degraded_local) or, if that fails too, to the last
	// known-good result (stale_serves).
	MClusterCellsLocal    = "cluster.cells_local"
	MClusterCellsRemote   = "cluster.cells_remote"
	MClusterDegradedLocal = "cluster.degraded_local"
	MClusterStaleServes   = "cluster.stale_serves"

	// Cluster forwarding: individual peer attempts, transient-failure
	// retries on the same peer, and failovers to the next ring owner.
	MClusterForwards      = "cluster.forwards"
	MClusterForwardErrors = "cluster.forward_errors"
	MClusterRetries       = "cluster.retries"
	MClusterFailovers     = "cluster.peer_failovers"

	// Request hedging: hedges launched after the primary exceeded the
	// latency budget, and hedges whose response won the race.
	MClusterHedgesFired = "cluster.hedges_fired"
	MClusterHedgesWon   = "cluster.hedges_won"

	// Per-peer circuit breaker state transitions.
	MClusterBreakerOpened   = "cluster.breaker.opened"
	MClusterBreakerHalfOpen = "cluster.breaker.half_open"
	MClusterBreakerClosed   = "cluster.breaker.closed"

	// Background health probing of peers.
	MClusterProbes        = "cluster.probes"
	MClusterProbeFailures = "cluster.probe_failures"

	// Latency of winning forwarded cell calls (nanosecond histogram).
	MClusterForwardLatency = "cluster.forward.latency_ns"

	// Learned surrogate predictor (internal/surrogate): confident hits
	// served from the model, fallbacks to full emulation (unconfident or
	// untrained neighborhoods), samples accepted into the bounded
	// training stores, and model refits.
	MSurrogateHits      = "surrogate.hits"
	MSurrogateFallbacks = "surrogate.fallbacks"
	MSurrogateSamples   = "surrogate.train_samples"
	MSurrogateRefits    = "surrogate.refits"

	// Shadow sampling: every Nth confident hit also runs the emulator
	// and records the surrogate-vs-emulator error — the absolute speedup
	// error ×1000 and the relative error in basis points — so the
	// accuracy claim stays continuously measured in production.
	MSurrogateShadowRuns   = "surrogate.shadow.runs"
	MSurrogateShadowAbsErr = "surrogate.shadow.abs_err_milli"
	MSurrogateShadowRelErr = "surrogate.shadow.rel_err_bp"

	// Predict wall time (nanosecond histogram) for answered requests —
	// the microsecond claim, measured on the serving path.
	MSurrogateEvalLatency = "surrogate.eval.latency_ns"
)

// allNames lists every metric name declared above, in declaration order.
// TestNamesDeclared keeps it in sync with the consts by parsing this
// file; emitters are tested against AllNames so no package can invent a
// metric name outside this vocabulary.
var allNames = []string{
	MStageProfile, MStageCompress, MStageCalibrate, MStageEmulate,
	MSimRuns, MSimEvents, MSimPreemptions, MSimHeadroom,
	MSweepCellsOK, MSweepCellsFailed, MSweepCellsSkipped,
	MAdviseRuns, MAdviseRegions, MAdviseAntiRecs, MAdviseLatency,
	MCacheHits, MCacheMisses, MCacheDedups,
	MServerPredicts, MServerSweeps, MServerAdvises, MServerRejected, MServerBadRequests, MServerImports,
	MServerPredictLatency, MServerSweepLatency, MServerAdviseLatency,
	MServerCacheHits, MServerCacheMisses, MServerCacheEvictions, MServerFlightDedups,
	MServerBatches, MServerBatchCells, MServerBatchSize,
	MImportRuns, MImportSamples, MImportFrames, MImportFramesDropped,
	MClusterCellsLocal, MClusterCellsRemote, MClusterDegradedLocal, MClusterStaleServes,
	MClusterForwards, MClusterForwardErrors, MClusterRetries, MClusterFailovers,
	MClusterHedgesFired, MClusterHedgesWon,
	MClusterBreakerOpened, MClusterBreakerHalfOpen, MClusterBreakerClosed,
	MClusterProbes, MClusterProbeFailures,
	MClusterForwardLatency,
	MSurrogateHits, MSurrogateFallbacks, MSurrogateSamples, MSurrogateRefits,
	MSurrogateShadowRuns, MSurrogateShadowAbsErr, MSurrogateShadowRelErr,
	MSurrogateEvalLatency,
}

// AllNames returns a copy of the canonical metric-name vocabulary.
func AllNames() []string {
	return append([]string(nil), allNames...)
}

// Declared reports whether name is part of the canonical vocabulary.
func Declared(name string) bool {
	for _, n := range allNames {
		if n == name {
			return true
		}
	}
	return false
}
