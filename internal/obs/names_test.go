package obs

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strconv"
	"testing"
)

// TestNamesDeclared keeps AllNames in lockstep with the consts: it
// parses names.go, collects every string constant declared there, and
// requires the allNames slice to contain exactly that set (no name can
// be added to the vocabulary without registering it, and vice versa).
func TestNamesDeclared(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "names.go", nil, 0)
	if err != nil {
		t.Fatalf("parse names.go: %v", err)
	}
	declared := map[string]bool{}
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.CONST {
			continue
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for _, v := range vs.Values {
				lit, ok := v.(*ast.BasicLit)
				if !ok || lit.Kind != token.STRING {
					continue
				}
				name, err := strconv.Unquote(lit.Value)
				if err != nil {
					t.Fatalf("unquote %s: %v", lit.Value, err)
				}
				declared[name] = true
			}
		}
	}
	if len(declared) == 0 {
		t.Fatal("found no const metric names in names.go")
	}

	registered := map[string]bool{}
	for _, n := range AllNames() {
		if registered[n] {
			t.Errorf("AllNames lists %q twice", n)
		}
		registered[n] = true
	}
	for n := range declared {
		if !registered[n] {
			t.Errorf("const metric name %q is not in allNames", n)
		}
	}
	for n := range registered {
		if !declared[n] {
			t.Errorf("allNames entry %q has no const declaration", n)
		}
	}
	if !Declared(MClusterHedgesFired) {
		t.Errorf("Declared(%q) = false", MClusterHedgesFired)
	}
	if Declared("cluster.bogus") {
		t.Error(`Declared("cluster.bogus") = true`)
	}
	// The surrogate vocabulary added in PR 9, spelled out so a renamed
	// const cannot silently drop a series the CI smoke job scrapes.
	for _, n := range []string{
		MSurrogateHits, MSurrogateFallbacks, MSurrogateSamples,
		MSurrogateRefits, MSurrogateShadowRuns, MSurrogateShadowAbsErr,
		MSurrogateShadowRelErr, MSurrogateEvalLatency,
	} {
		if !Declared(n) {
			t.Errorf("Declared(%q) = false", n)
		}
	}
	if Declared("surrogate.bogus") {
		t.Error(`Declared("surrogate.bogus") = true`)
	}
	// The advise vocabulary (causal advisor + /v1/advise), spelled out so
	// a renamed const cannot silently drop a series the advise-smoke CI
	// job scrapes.
	for _, n := range []string{
		MAdviseRuns, MAdviseRegions, MAdviseAntiRecs, MAdviseLatency,
		MServerAdvises, MServerAdviseLatency,
	} {
		if !Declared(n) {
			t.Errorf("Declared(%q) = false", n)
		}
	}
	if Declared("advise.bogus") {
		t.Error(`Declared("advise.bogus") = true`)
	}
}

// TestAllNamesNoDuplicates is the standalone regression for the
// registration slice: appending a name twice (an easy merge mistake)
// must fail even if the declared-set comparison above is ever relaxed.
func TestAllNamesNoDuplicates(t *testing.T) {
	seen := map[string]bool{}
	for _, n := range AllNames() {
		if seen[n] {
			t.Errorf("AllNames lists %q more than once", n)
		}
		seen[n] = true
	}
	if len(seen) == 0 {
		t.Fatal("AllNames is empty")
	}
}
