// Package obs is the observability layer: execution tracing for the
// simulated machine and the emulators, and a metrics registry for the
// prediction pipeline.
//
// Both halves follow the same contract: **zero allocations and near-zero
// cost when disabled**. A nil ExecTracer, a nil *Registry, a nil *Counter
// and a nil *Histogram are all valid no-op receivers, so instrumented code
// writes `tr.Exec(ev)` or `c.Inc()` unconditionally after a single nil
// guard (for tracers) or with none at all (for metrics handles) and pays
// nothing in sweeps that leave observability off — the property
// BenchmarkObsDisabled pins at 0 allocs/op.
//
// The tracer records ExecEvents — schedule, preempt, block/unblock, lock
// and work-slice events with virtual timestamps — from internal/sim, and
// fast-forward step events from internal/ff. TraceBuffer collects them
// and exports Chrome trace_event JSON (one lane per simulated core),
// loadable in chrome://tracing or Perfetto, turning the paper's
// hand-drawn Fig. 5/7 per-CPU timelines into real artifacts.
package obs

import (
	"sort"
	"sync"

	"prophet/internal/clock"
)

// ExecKind enumerates execution-trace event kinds.
type ExecKind uint8

// Execution events. Slice and FFStep are duration events ([Time,End));
// the rest are instants.
const (
	// KSlice: a thread occupied a core for [Time,End) (simulated
	// machine work slice — the Gantt boxes of Fig. 5/7).
	KSlice ExecKind = iota
	// KSchedule: the OS scheduler placed a thread on a core.
	KSchedule
	// KPreempt: the quantum expired and the thread was involuntarily
	// descheduled.
	KPreempt
	// KBlock: the thread blocked (lock wait, join, park, sleep).
	KBlock
	// KUnblock: a blocked thread became ready again.
	KUnblock
	// KSpawn: a new thread was created.
	KSpawn
	// KExit: a thread exited.
	KExit
	// KLockAcquire: the thread acquired a lock (immediately or by
	// direct handoff).
	KLockAcquire
	// KLockBlocked: the thread found the lock held and joined its wait
	// queue.
	KLockBlocked
	// KLockRelease: the thread released a lock.
	KLockRelease
	// KFFStep: the fast-forward emulator advanced a worker's pseudo
	// clock over one segment ([Time,End) on an abstract CPU).
	KFFStep
)

// String names the kind (the Chrome event name).
func (k ExecKind) String() string {
	switch k {
	case KSlice:
		return "slice"
	case KSchedule:
		return "schedule"
	case KPreempt:
		return "preempt"
	case KBlock:
		return "block"
	case KUnblock:
		return "unblock"
	case KSpawn:
		return "spawn"
	case KExit:
		return "exit"
	case KLockAcquire:
		return "lock-acquire"
	case KLockBlocked:
		return "lock-blocked"
	case KLockRelease:
		return "lock-release"
	case KFFStep:
		return "ff-step"
	}
	return "event(?)"
}

// ExecEvent is one execution-trace event. It is passed by value through
// the ExecTracer interface, so emitting an event allocates nothing.
type ExecEvent struct {
	// Kind classifies the event.
	Kind ExecKind
	// Time is the virtual timestamp (cycles); for duration events the
	// start.
	Time clock.Cycles
	// End is the end timestamp of duration events (KSlice, KFFStep);
	// zero for instants.
	End clock.Cycles
	// Core is the core (or abstract CPU) index; -1 when the thread holds
	// no core (e.g. an unblock of a thread still in the ready queue).
	Core int
	// Thread is the virtual thread (or FF worker) id.
	Thread int
	// Lock is the lock id of lock events; -1 otherwise.
	Lock int
}

// ExecTracer receives execution events. Implementations are called from
// the single-threaded simulation/emulation engines, in virtual-time
// order per engine; they must not retain pointers into engine state
// (events are self-contained values).
//
// A nil ExecTracer means tracing is disabled; emitters guard with a
// single nil check.
type ExecTracer interface {
	Exec(ev ExecEvent)
}

// TraceBuffer is an ExecTracer that collects events in memory for later
// export (Chrome trace JSON via WriteChromeTrace, or direct inspection
// via Events). The zero value is ready to use. It is safe for concurrent
// use: sequential machine runs of a thread-count curve, or parallel
// sweep cells sharing one buffer, may all append to it.
type TraceBuffer struct {
	mu     sync.Mutex
	events []ExecEvent
}

// Exec appends one event.
func (b *TraceBuffer) Exec(ev ExecEvent) {
	b.mu.Lock()
	b.events = append(b.events, ev)
	b.mu.Unlock()
}

// Len returns the number of buffered events.
func (b *TraceBuffer) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.events)
}

// Events returns a copy of the buffered events.
func (b *TraceBuffer) Events() []ExecEvent {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]ExecEvent, len(b.events))
	copy(out, b.events)
	return out
}

// Reset discards all buffered events.
func (b *TraceBuffer) Reset() {
	b.mu.Lock()
	b.events = b.events[:0]
	b.mu.Unlock()
}

// Cores returns the sorted set of core indices that appear in machine
// events (everything but KFFStep), i.e. the lanes a Chrome export will
// contain for the machine process.
func (b *TraceBuffer) Cores() []int {
	b.mu.Lock()
	defer b.mu.Unlock()
	seen := map[int]bool{}
	for _, ev := range b.events {
		if ev.Kind != KFFStep && ev.Core >= 0 {
			seen[ev.Core] = true
		}
	}
	out := make([]int, 0, len(seen))
	for c := range seen {
		out = append(out, c)
	}
	sort.Ints(out)
	return out
}

// MultiTracer fans one event stream out to several tracers (e.g. a
// TraceBuffer plus a live consumer). Nil members are skipped.
type MultiTracer []ExecTracer

// Exec forwards ev to every non-nil member.
func (m MultiTracer) Exec(ev ExecEvent) {
	for _, t := range m {
		if t != nil {
			t.Exec(ev)
		}
	}
}
