package prophet_test

import (
	"fmt"

	"prophet"
)

// ExampleProfileProgram shows the whole workflow: annotate, profile,
// predict.
func ExampleProfileProgram() {
	program := func(ctx prophet.Context) {
		ctx.SecBegin("loop")
		for i := 0; i < 24; i++ {
			ctx.TaskBegin("iteration")
			ctx.Compute(100_000, 0)
			ctx.TaskEnd()
		}
		ctx.SecEnd(false)
	}
	prof, err := prophet.ProfileProgram(program, &prophet.Options{
		Machine:            prophet.MachineConfig{Cores: 12, Quantum: 10_000, ContextSwitch: -1},
		DisableMemoryModel: true,
	})
	if err != nil {
		panic(err)
	}
	est := prof.Estimate(prophet.Request{Threads: 8, Sched: prophet.Static})
	fmt.Printf("serial: %d cycles\n", prof.SerialCycles)
	// 7.66x, not 8.00x: the emulation charges the calibrated OpenMP
	// fork/join and dispatch overheads.
	fmt.Printf("8 threads, (static): %.2fx\n", est.Speedup)
	// Output:
	// serial: 2400000 cycles
	// 8 threads, (static): 7.66x
}

// ExampleProfile_Estimate compares the three prediction engines on a
// lock-bound loop.
func ExampleProfile_Estimate() {
	program := func(ctx prophet.Context) {
		ctx.SecBegin("locked")
		for i := 0; i < 8; i++ {
			ctx.TaskBegin("t")
			ctx.LockBegin(1)
			ctx.Compute(50_000, 0) // the whole task holds the lock
			ctx.LockEnd(1)
			ctx.TaskEnd()
		}
		ctx.SecEnd(false)
	}
	prof, err := prophet.ProfileProgram(program, &prophet.Options{
		Machine:            prophet.MachineConfig{Cores: 4, Quantum: 10_000, ContextSwitch: -1},
		DisableMemoryModel: true,
	})
	if err != nil {
		panic(err)
	}
	ff := prof.Estimate(prophet.Request{Method: prophet.FastForward, Threads: 4, Sched: prophet.Static1})
	bound := prof.Estimate(prophet.Request{Method: prophet.CriticalPathBound, Threads: 4})
	fmt.Printf("fast-forward sees the lock: %.2fx\n", ff.Speedup)
	fmt.Printf("critical-path bound is lock-blind: %.2fx\n", bound.Speedup)
	// Output:
	// fast-forward sees the lock: 0.98x
	// critical-path bound is lock-blind: 4.00x
}

// ExampleProfile_Regions ranks the parallel regions of a program by work.
func ExampleProfile_Regions() {
	program := func(ctx prophet.Context) {
		ctx.SecBegin("hot")
		for i := 0; i < 4; i++ {
			ctx.TaskBegin("t")
			ctx.Compute(200_000, 0)
			ctx.TaskEnd()
		}
		ctx.SecEnd(false)
		ctx.SecBegin("cold")
		ctx.TaskBegin("t")
		ctx.Compute(100_000, 0)
		ctx.TaskEnd()
		ctx.SecEnd(false)
	}
	prof, err := prophet.ProfileProgram(program, &prophet.Options{DisableMemoryModel: true})
	if err != nil {
		panic(err)
	}
	for _, r := range prof.Regions() {
		fmt.Printf("%s: %.0f%% of the program, self-parallelism %.0f\n",
			r.Name, 100*r.Coverage, r.SelfParallelism)
	}
	// Output:
	// hot: 89% of the program, self-parallelism 4
	// cold: 11% of the program, self-parallelism 1
}

// ExampleTree_String renders a profiled program tree (the paper's Fig. 4
// format).
func ExampleTree_String() {
	program := func(ctx prophet.Context) {
		ctx.SecBegin("loop")
		ctx.TaskBegin("t")
		ctx.Compute(10, 0)
		ctx.LockBegin(1)
		ctx.Compute(20, 0)
		ctx.LockEnd(1)
		ctx.TaskEnd()
		ctx.SecEnd(false)
	}
	prof, err := prophet.ProfileProgram(program, &prophet.Options{
		DisableMemoryModel: true,
		CompressTolerance:  -1,
	})
	if err != nil {
		panic(err)
	}
	fmt.Print(prof.Tree.String())
	// Output:
	// Root total=30
	//   Sec "loop" total=30
	//     Task "t" total=30
	//       U 10
	//       L 20 lock=1
}
