// Regenerator for results/bench_baseline.json — the machine-readable
// before/after record of the hot-path rework (monomorphic event heap,
// semaphore baton handoff, pooled machines, DRAM stretch memo).
//
// The "before" numbers are frozen: they were measured at the last commit
// preceding the rework, on the host recorded in the file. The "after"
// numbers are re-measured live. Regenerate with:
//
//	PROPHET_WRITE_BENCH_BASELINE=1 go test -run TestWriteBenchBaseline .
package prophet_test

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
)

type benchNumbers struct {
	NsPerOp      int64   `json:"ns_per_op"`
	AllocsPerOp  int64   `json:"allocs_per_op"`
	BytesPerOp   int64   `json:"bytes_per_op"`
	EventsPerSec float64 `json:"events_per_sec,omitempty"`
}

type benchEntry struct {
	Name    string       `json:"name"`
	Note    string       `json:"note,omitempty"`
	Before  benchNumbers `json:"before"`
	After   benchNumbers `json:"after"`
	Speedup float64      `json:"speedup"`
}

type benchBaseline struct {
	Schema         string       `json:"schema"`
	Description    string       `json:"description"`
	Host           string       `json:"host"`
	BaselineCommit string       `json:"baseline_commit"`
	Benchmarks     []benchEntry `json:"benchmarks"`
}

// Frozen pre-rework measurements (commit 49032c9, the same host that the
// regenerator runs on; see Host below).
var beforeNumbers = map[string]benchNumbers{
	"BenchmarkSimEngine":       {NsPerOp: 1_367_622, AllocsPerOp: 3662, BytesPerOp: 181_200, EventsPerSec: 1_298_605},
	"BenchmarkFFEmulator":      {NsPerOp: 1_357_207, AllocsPerOp: 1768, BytesPerOp: 442_488},
	"BenchmarkRealGroundTruth": {NsPerOp: 1_002_383, AllocsPerOp: 9162, BytesPerOp: 443_744},
	// Measured via go test -bench BenchmarkSweepScaling -benchtime 2x
	// ./internal/experiments/ (whole 16-sample Fig. 11 sweep, serial +
	// 4-worker, per op); not re-run here because it lives in another
	// package and takes ~1 s per iteration.
	"BenchmarkSweepScaling": {NsPerOp: 874_150_602},
}

// afterSweepScaling mirrors the frozen cross-package sweep measurement on
// the "after" side (same command as above, post-rework tree).
var afterSweepScaling = benchNumbers{NsPerOp: 401_757_780}

func TestWriteBenchBaseline(t *testing.T) {
	if os.Getenv("PROPHET_WRITE_BENCH_BASELINE") == "" {
		t.Skip("set PROPHET_WRITE_BENCH_BASELINE=1 to regenerate results/bench_baseline.json")
	}
	measure := func(name string, fn func(*testing.B)) benchEntry {
		r := testing.Benchmark(fn)
		after := benchNumbers{
			NsPerOp:      r.NsPerOp(),
			AllocsPerOp:  r.AllocsPerOp(),
			BytesPerOp:   r.AllocedBytesPerOp(),
			EventsPerSec: r.Extra["events/sec"],
		}
		before := beforeNumbers[name]
		return benchEntry{
			Name:    name,
			Before:  before,
			After:   after,
			Speedup: round2(float64(before.NsPerOp) / float64(after.NsPerOp)),
		}
	}
	out := benchBaseline{
		Schema: "prophet-bench-baseline/v1",
		Description: "Hot-path rework before/after: eventq min-heap replacing container/heap, " +
			"semaphore baton handoff replacing the two-channel rendezvous, machine/thread pooling, " +
			"DRAM stretch memoization, FF emulator scratch pooling.",
		Host:           fmt.Sprintf("%s/%s, GOMAXPROCS=%d", runtime.GOOS, runtime.GOARCH, runtime.GOMAXPROCS(0)),
		BaselineCommit: "49032c9",
		Benchmarks: []benchEntry{
			measure("BenchmarkSimEngine", BenchmarkSimEngine),
			measure("BenchmarkFFEmulator", BenchmarkFFEmulator),
			measure("BenchmarkRealGroundTruth", BenchmarkRealGroundTruth),
			{
				Name:    "BenchmarkSweepScaling",
				Note:    "whole 16-sample Fig. 11 validation sweep (serial + 4-worker) per op; measured out of band, see beforeNumbers",
				Before:  beforeNumbers["BenchmarkSweepScaling"],
				After:   afterSweepScaling,
				Speedup: round2(float64(beforeNumbers["BenchmarkSweepScaling"].NsPerOp) / float64(afterSweepScaling.NsPerOp)),
			},
		},
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("results/bench_baseline.json", append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote results/bench_baseline.json:\n%s", data)
}

func round2(v float64) float64 {
	return float64(int64(v*100+0.5)) / 100
}
