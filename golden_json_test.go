package prophet

import (
	"encoding/json"
	"errors"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// update regenerates the golden file instead of comparing:
//
//	go test . -run TestEstimateGoldenJSON -update
var update = flag.Bool("update", false, "rewrite golden files under results/golden/")

// TestEstimateGoldenJSON pins the wire format of Request/Estimate against
// a checked-in golden file: the JSON field names and value spellings are
// a public contract (CSV/JSON consumers parse them), so any change must
// show up as a reviewed golden diff. The same bytes must also unmarshal
// back into equivalent estimates (Err flattens to its message).
func TestEstimateGoldenJSON(t *testing.T) {
	ests := []Estimate{
		{
			Request: Request{Method: FastForward, Threads: 8, Paradigm: OpenMP, Sched: Static, MemoryModel: true},
			Speedup: 7.62,
			Time:    629_921,
		},
		{
			Request: Request{Method: Synthesizer, Threads: 12, Paradigm: Cilk, Sched: Dynamic1},
			Speedup: 10.91,
			Time:    440_071,
		},
		{
			Request: Request{Method: Suitability, Threads: 4, Sched: Sched{Kind: Static1.Kind, Chunk: 16}},
			Speedup: 3.2,
			Time:    1_500_000,
		},
		{
			Request: Request{Method: CriticalPathBound, Threads: 6, Sched: Guided},
			Err:     errors.New("sim: deadlock: all runnable threads blocked"),
		},
		{
			Request: Request{Method: FastForward, Threads: 8, Paradigm: OpenMP, Sched: Dynamic1, MemoryModel: true, Machine: "embedded4+4"},
			Speedup: 3.41,
			Time:    1_407_624,
		},
	}
	data, err := json.MarshalIndent(ests, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	data = append(data, '\n')

	path := filepath.Join("results", "golden", "estimates.json")
	if *update {
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (regenerate with `go test . -update`): %v", err)
	}
	if string(data) != string(want) {
		t.Errorf("estimate JSON drifted from golden file %s:\ngot:\n%s\nwant:\n%s", path, data, want)
	}

	var back []Estimate
	if err := json.Unmarshal(want, &back); err != nil {
		t.Fatalf("golden file does not unmarshal: %v", err)
	}
	if len(back) != len(ests) {
		t.Fatalf("round-trip length %d, want %d", len(back), len(ests))
	}
	for i := range ests {
		if !reflect.DeepEqual(back[i].Request, ests[i].Request) {
			t.Errorf("[%d] request round-trip: got %+v, want %+v", i, back[i].Request, ests[i].Request)
		}
		if back[i].Speedup != ests[i].Speedup || back[i].Time != ests[i].Time {
			t.Errorf("[%d] value round-trip: got %+v", i, back[i])
		}
		switch {
		case ests[i].Err == nil && back[i].Err != nil:
			t.Errorf("[%d] spurious err %v", i, back[i].Err)
		case ests[i].Err != nil && (back[i].Err == nil || back[i].Err.Error() != ests[i].Err.Error()):
			t.Errorf("[%d] err round-trip: got %v, want %v", i, back[i].Err, ests[i].Err)
		}
	}
}

// TestEstimateLegacyWire pins backward compatibility of the machine
// field against a frozen pre-machine fixture: payloads written before
// Request.Machine existed decode identically (Machine comes back empty,
// meaning the default machine), and re-encoding them reproduces the old
// bytes exactly — an empty machine is omitted, never serialized.
func TestEstimateLegacyWire(t *testing.T) {
	want, err := os.ReadFile(filepath.Join("results", "golden", "estimates_legacy.json"))
	if err != nil {
		t.Fatalf("missing legacy fixture (frozen at its introduction; never regenerate): %v", err)
	}
	var ests []Estimate
	if err := json.Unmarshal(want, &ests); err != nil {
		t.Fatalf("legacy fixture does not unmarshal: %v", err)
	}
	for i, e := range ests {
		if e.Machine != "" {
			t.Errorf("[%d] legacy payload decoded with machine %q, want empty (default)", i, e.Machine)
		}
	}
	data, err := json.MarshalIndent(ests, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	data = append(data, '\n')
	if string(data) != string(want) {
		t.Errorf("re-encoding a legacy payload changed its bytes:\ngot:\n%s\nwant:\n%s", data, want)
	}
}
