package prophet

import (
	"errors"
	"testing"
)

// memoryHeavyProgram is an annotated loop whose tasks stream enough LLC
// misses to saturate a narrow memory bus — the workload that separates
// machines differing in bandwidth or core layout.
func memoryHeavyProgram(n int) Program {
	return func(ctx Context) {
		ctx.SecBegin("stream")
		for i := 0; i < n; i++ {
			ctx.TaskBegin("it")
			ctx.Compute(20_000, 600)
			ctx.TaskEnd()
		}
		ctx.SecEnd(false)
	}
}

// TestEstimateMachineVariants drives the machine dimension end-to-end
// through the public API: naming the profile's own machine changes
// nothing, naming a preset re-profiles against it and yields a distinct
// deterministic prediction, and the estimate echoes the requested name.
func TestEstimateMachineVariants(t *testing.T) {
	p, err := ProfileProgram(memoryHeavyProgram(24), nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.MachineName(); got != DefaultMachineName {
		t.Fatalf("MachineName() = %q, want %q", got, DefaultMachineName)
	}
	base := Request{Method: FastForward, Sched: Static, MemoryModel: true, Threads: 8}

	def := p.Estimate(base)
	if def.Err != nil {
		t.Fatal(def.Err)
	}

	// Naming the default machine explicitly is the identity: same
	// profile, same numbers, name echoed on the wire.
	named := base
	named.Machine = DefaultMachineName
	if got := p.Estimate(named); got.Err != nil || got.Speedup != def.Speedup || got.Time != def.Time {
		t.Errorf("explicit %s estimate %+v, want the default-machine result %+v", DefaultMachineName, got, def)
	}

	variants := map[string]Estimate{}
	for _, name := range []string{"embedded4+4", "hbm12"} {
		req := base
		req.Machine = name
		est := p.Estimate(req)
		if est.Err != nil {
			t.Fatalf("%s: %v", name, est.Err)
		}
		if est.Machine != name {
			t.Errorf("%s: estimate carries machine %q", name, est.Machine)
		}
		if est.Speedup == def.Speedup {
			t.Errorf("%s: speedup %.3f identical to the default machine", name, est.Speedup)
		}
		// The variant cache makes repeats cheap; they must also be
		// deterministic.
		if again := p.Estimate(req); again.Speedup != est.Speedup || again.Time != est.Time {
			t.Errorf("%s: repeat estimate %+v differs from %+v", name, again, est)
		}
		variants[name] = est
	}
	// The wider memory bus must beat the embedded part outright.
	if variants["hbm12"].Speedup <= variants["embedded4+4"].Speedup {
		t.Errorf("hbm12 speedup %.3f not above embedded4+4 %.3f",
			variants["hbm12"].Speedup, variants["embedded4+4"].Speedup)
	}

	// Thread default follows the variant machine's core count.
	req := Request{Method: FastForward, Sched: Static, Machine: "embedded4+4"}
	if est := p.Estimate(req); est.Threads != 8 {
		t.Errorf("embedded4+4 defaulted threads = %d, want 8", est.Threads)
	}

	// Unknown names surface the typed sentinel.
	req = base
	req.Machine = "no-such-machine"
	est := p.Estimate(req)
	if !errors.Is(est.Err, ErrUnknownMachine) {
		t.Errorf("unknown machine error = %v, want ErrUnknownMachine", est.Err)
	}
}

// TestMachineVariantGroundTruth runs the simulated ground truth on a
// variant machine: the asymmetric embedded part must be slower than the
// default testbed on the same tree.
func TestMachineVariantGroundTruth(t *testing.T) {
	p, err := ProfileProgram(memoryHeavyProgram(24), nil)
	if err != nil {
		t.Fatal(err)
	}
	req := Request{Threads: 8, Sched: Static}
	def := p.RealSpeedup(req)
	req.Machine = "embedded4+4"
	emb := p.RealSpeedup(req)
	if def <= 0 || emb <= 0 {
		t.Fatalf("ground truth speedups: default %.3f, embedded %.3f", def, emb)
	}
	if emb >= def {
		t.Errorf("embedded4+4 real speedup %.3f not below default %.3f", emb, def)
	}
}

// TestParseMachines covers the -machines list grammar.
func TestParseMachines(t *testing.T) {
	specs, err := ParseMachines(" hbm12, westmere12 ,hbm12")
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 2 || specs[0].Name != "hbm12" || specs[1].Name != "westmere12" {
		t.Errorf("ParseMachines kept %v, want [hbm12 westmere12] in given order", specs)
	}
	if _, err := ParseMachines(""); err == nil {
		t.Error("empty list accepted")
	}
	if _, err := ParseMachines("westmere12,bogus"); !errors.Is(err, ErrUnknownMachine) {
		t.Errorf("unknown entry error = %v, want ErrUnknownMachine", err)
	}
}
