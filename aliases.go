package prophet

import (
	"prophet/internal/baseline"
	"prophet/internal/clock"
	"prophet/internal/memmodel"
	"prophet/internal/omprt"
	"prophet/internal/sim"
	"prophet/internal/synth"
	"prophet/internal/trace"
	"prophet/internal/tree"
)

// The public surface re-exports the library's building blocks through
// aliases, so user code needs only this package.

// Context is the annotation interface an annotated serial program is
// written against (the paper's Table II plus the Compute cost hook).
type Context = trace.Context

// Program is an annotated serial program.
type Program = trace.Program

// Cycles is a CPU-cycle count.
type Cycles = clock.Cycles

// Tree is a program-tree node (§IV-B, Fig. 4).
type Tree = tree.Node

// MachineConfig describes the simulated target machine.
type MachineConfig = sim.Config

// DefaultMachine returns the paper's 12-core Westmere-class machine.
func DefaultMachine() MachineConfig { return sim.DefaultConfig() }

// Paradigm selects the threading model of generated/parallelized code.
type Paradigm = synth.Paradigm

// Threading paradigms.
const (
	// OpenMP uses team-based parallel-for with OpenMP schedules; nested
	// sections spawn nested teams (OpenMP 2.0 behaviour).
	OpenMP = synth.OpenMP
	// Cilk uses a work-stealing runtime (Cilk-Plus-like); the right
	// choice for recursive parallelism.
	Cilk = synth.Cilk
)

// Region is one parallel section's critical-path profile (work, span,
// self-parallelism, coverage), as returned by Profile.Regions.
type Region = baseline.Region

// BurdenExplanation exposes the memory model's Eq. 1–5 intermediates for
// one section, as returned by Profile.ExplainBurden.
type BurdenExplanation = memmodel.Explanation

// MemModel is a calibrated memory performance model (Ψ/Φ fits, §V). It
// marshals to JSON, so a calibration can be saved and reused via
// Options.MemModel.
type MemModel = memmodel.Model

// Sched is an OpenMP loop schedule.
type Sched = omprt.Sched

// The schedules the paper evaluates.
var (
	// Static is schedule(static): one contiguous block per thread.
	Static = omprt.SchedStatic
	// Static1 is schedule(static,1): round-robin single iterations.
	Static1 = omprt.SchedStatic1
	// Dynamic1 is schedule(dynamic,1): first-come first-served.
	Dynamic1 = omprt.SchedDynamic1
	// Guided is schedule(guided): shrinking chunks.
	Guided = omprt.SchedGuided
)
