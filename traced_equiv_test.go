package prophet

import "testing"

// TestTracedUntracedEquivalent checks that attaching an execution tracer
// is purely observational: every prediction method and the ground-truth
// machine run must produce bit-identical numbers with and without an
// Observer.Trace sink. This pins the engine's determinism contract — the
// tracer hangs off the event stream, it never participates in it — and
// would catch any hot-path "optimization" that skips work only when
// observability is off.
func TestTracedUntracedEquivalent(t *testing.T) {
	prog := balancedProgram(24, 60_000)
	mc := testMachine(12)

	profile := func(o Observer) *Profile {
		t.Helper()
		p, err := ProfileProgram(prog, &Options{Machine: mc, Observer: o})
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	plain := profile(Observer{})
	var buf TraceBuffer
	traced := profile(Observer{Trace: &buf})

	if plain.SerialCycles != traced.SerialCycles {
		t.Fatalf("SerialCycles differ: %d vs %d", plain.SerialCycles, traced.SerialCycles)
	}
	for _, method := range []Method{FastForward, Synthesizer, Suitability} {
		for _, threads := range []int{2, 8, 12} {
			req := Request{Method: method, Threads: threads}
			a := plain.Estimate(req)
			b := traced.Estimate(req)
			if a.Speedup != b.Speedup {
				t.Errorf("%v threads=%d: speedup %v untraced vs %v traced",
					method, threads, a.Speedup, b.Speedup)
			}
		}
		// The real machine run drives the tracer hardest: scheduling,
		// preemption and lock events all flow through it.
		req := Request{Method: method, Threads: 12}
		if a, b := plain.RealSpeedup(req), traced.RealSpeedup(req); a != b {
			t.Errorf("RealSpeedup: %v untraced vs %v traced", a, b)
		}
	}
	if len(buf.Events()) == 0 {
		t.Fatal("tracer attached but saw no events — equivalence test is vacuous")
	}
}
