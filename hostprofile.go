package prophet

import (
	"context"

	"prophet/internal/compress"
	"prophet/internal/trace"
)

// HostProfile profiles an annotated program that performs *real*
// computation on the host machine: intervals are measured with the
// monotonic clock at a nominal frequency (the rdtsc substitute of §VI-A),
// and the profiler's own annotation overhead is excluded from the recorded
// lengths. This is the paper's original deployment flow — profile real
// code where it runs — as opposed to ProfileProgram's deterministic
// cost-model profiling.
//
// Usage:
//
//	hp := prophet.NewHostProfile()
//	myAnnotatedProgram(hp.Context()) // does real work, annotated
//	prof, err := hp.Finish(nil)
//	est := prof.Estimate(...)
//
// Host timings carry host noise; on a busy machine expect the measured
// lengths (not the tree shape) to wobble accordingly.
type HostProfile struct {
	p *trace.HostProfiler
}

// NewHostProfile starts a host profiling session at the default nominal
// frequency (2.4 GHz, the paper machine's clock).
func NewHostProfile() *HostProfile {
	return NewHostProfileHz(0)
}

// NewHostProfileHz starts a session converting wall time to cycles at hz
// (non-positive selects the default).
func NewHostProfileHz(hz float64) *HostProfile {
	return &HostProfile{p: trace.NewHostProfiler(hz)}
}

// Context returns the annotation context to drive the program with. Its
// Compute method burns real time (FakeDelay); real computation between
// annotation calls is simply measured.
func (h *HostProfile) Context() Context { return h.p }

// Finish closes profiling and builds a Profile ready for estimation.
// Hardware counters are unavailable on the host (no PAPI substitute), so
// unless the program reported misses through Compute the memory model
// gates to β = 1; pass Options.MemModel to supply an external model.
// Panics below the boundary return as *PanicError.
func (h *HostProfile) Finish(opts *Options) (p *Profile, err error) {
	defer recoverToError(&err)
	root, err := h.p.Finish()
	if err != nil {
		return nil, err
	}
	o := opts.withDefaults()
	prof := &Profile{
		Tree:         root,
		Counters:     h.p.Counters(),
		SerialCycles: root.TotalLen(),
		opts:         o,
	}
	if o.CompressTolerance >= 0 {
		prof.Compression = compress.Compress(root, compress.Options{
			Tolerance: o.CompressTolerance,
			MaxNodes:  o.MaxTreeNodes,
		})
	}
	if !o.DisableMemoryModel {
		m := o.MemModel
		if m == nil {
			m, err = modelFor(context.Background(), o.Machine, o.ThreadCounts)
			if err != nil {
				return nil, err
			}
		}
		prof.Model = m
		if o.AverageBurdensByName {
			m.AssignBurdensAveraged(root, o.ThreadCounts)
		} else {
			m.AssignBurdens(root, o.ThreadCounts)
		}
	}
	return prof, nil
}
