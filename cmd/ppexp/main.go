// Command ppexp regenerates the paper's tables and figures against the
// simulated machine.
//
// Usage:
//
//	ppexp                      # everything (Fig. 11 at -samples, Fig. 12 full)
//	ppexp -fig 5               # one figure: 4, 5, 7, 11, 12 (12 includes Fig. 2)
//	ppexp -table 1             # one table: 1, 3, overhead, ranking
//	ppexp -calibration         # Eq. (6)/(7) fits
//	ppexp -samples 300         # Fig. 11 sample count (paper: 300)
//	ppexp -bench NPB-FT,NPB-EP # restrict Fig. 12 to some benchmarks
//	ppexp -machines all        # machine matrix: PredM per machine preset
//	ppexp -csv dir             # also write CSV series/scatters into dir
//	ppexp -workers 8           # sweep worker pool (0 = GOMAXPROCS, 1 = serial)
//	ppexp -metrics m.json      # write a metrics snapshot ("-" = stdout)
//
// Experiment grids run on the internal/sweep worker pool; output is
// byte-identical at every -workers setting.
//
// -metrics snapshots the harness's observability registry after all
// experiments finish: pipeline stage wall times, DES event counts from
// every simulated machine run, profile-cache hit/miss/dedup traffic and
// per-cell sweep outcomes, as JSON with stable field names.
//
// Exit codes: 0 success; 1 a write or cell failure under -failfast;
// 2 usage error; 3 the -timeout deadline expired (partial results are
// still printed — canceled cells are reported as skipped).
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"prophet"
	"prophet/internal/experiments"
	"prophet/internal/pprofutil"
	"prophet/internal/report"
)

func main() {
	var (
		fig        = flag.String("fig", "", "regenerate one figure: 4|5|7|11|12")
		table      = flag.String("table", "", "regenerate one table: 1|3|overhead")
		calib      = flag.Bool("calibration", false, "run the Eq. (6)/(7) calibration")
		samples    = flag.Int("samples", 60, "Fig. 11 random samples per case (paper: 300)")
		benches    = flag.String("bench", "", "comma-separated benchmark subset for Fig. 12")
		machinesIn = flag.String("machines", "", "machine matrix over these comma-separated presets (\"all\" = every preset); runs in addition to the selected figures")
		csvDir     = flag.String("csv", "", "directory for CSV output")
		markdown   = flag.Bool("md", false, "render tables as GitHub markdown instead of aligned text")
		coresArg   = flag.String("cores", "", "comma-separated core counts (default 2,4,6,8,10,12)")
		workers    = flag.Int("workers", 0, "sweep worker pool size (0 = GOMAXPROCS, 1 = serial)")
		timeout    = flag.Duration("timeout", 0, "stop starting new sweep cells after this duration and exit 3 (0 = no limit)")
		failFast   = flag.Bool("failfast", false, "cancel the remainder of a sweep when any cell fails")
		metricsOut = flag.String("metrics", "", "write a metrics snapshot as JSON to this file (\"-\" = stdout)")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProfile = flag.String("memprofile", "", "write a heap (allocs) profile to this file at exit")
	)
	flag.Parse()

	stopProfiles, err := pprofutil.Start(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	defer stopProfiles()

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	cfg := experiments.Config{Samples: *samples, Workers: *workers, FailFast: *failFast}
	if *metricsOut != "" {
		cfg.Metrics = &prophet.Metrics{}
	}
	if *coresArg != "" {
		cores, err := prophet.ParseCores(*coresArg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		cfg.Cores = cores
	}
	var names []string
	if *benches != "" {
		for _, b := range strings.Split(*benches, ",") {
			names = append(names, strings.TrimSpace(b))
		}
	}

	var machineNames []string
	if *machinesIn != "" && *machinesIn != "all" {
		specs, err := prophet.ParseMachines(*machinesIn)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		for _, sp := range specs {
			machineNames = append(machineNames, sp.Name)
		}
	}

	markdownOut = *markdown
	all := *fig == "" && *table == "" && !*calib && *machinesIn == ""
	out := os.Stdout

	// One harness for the whole invocation: figures sharing inputs
	// (Fig. 11 / ranking samples, Fig. 12 / Table III benchmark
	// profiles) reuse each other's cached profiles. The context gates
	// every sweep: when -timeout fires, no new cell starts, in-flight
	// cells drain, and the merged output marks the rest as skipped.
	h := experiments.NewCtx(ctx, cfg)

	if all || *fig == "4" {
		fmt.Fprintln(out, "## Fig. 4 — program tree of the running example")
		fmt.Fprintln(out)
		fmt.Fprintln(out, experiments.Fig4())
	}
	if all || *fig == "5" {
		mustWrite(experiments.Fig5(), out)
	}
	if all || *fig == "7" {
		mustWrite(experiments.Fig7(cfg), out)
	}
	if all || *fig == "11" {
		res := h.Fig11()
		mustWrite(res.Summary, out)
		if res.Failed > 0 {
			fmt.Fprintf(os.Stderr, "fig 11: %d sample cells failed\n", res.Failed)
		}
		if res.Skipped > 0 {
			fmt.Fprintf(os.Stderr, "fig 11: %d sample cells skipped (canceled)\n", res.Skipped)
		}
		if *csvDir != "" {
			for _, c := range res.Cases {
				writeCSV(*csvDir, "fig11-"+slug(c.Name)+".csv", c.Scatter.WriteCSV)
			}
		}
	}
	if all || *fig == "12" || *fig == "2" {
		series := h.Fig12(names)
		fmt.Fprintln(out, "## Fig. 12 — benchmark predictions (the NPB-FT panel is Fig. 2)")
		fmt.Fprintln(out)
		for _, s := range series {
			mustWrite(s.Table(), out)
			if *csvDir != "" {
				writeCSV(*csvDir, "fig12-"+slug(s.Name)+".csv", s.WriteCSV)
			}
		}
	}
	if all || *table == "1" {
		mustWrite(experiments.Table1(), out)
	}
	if all || *table == "3" {
		mustWrite(h.Table3(names), out)
	}
	if all || *table == "overhead" {
		mustWrite(h.OverheadTable(names), out)
	}
	if all || *table == "ranking" {
		mustWrite(h.ScheduleRanking(), out)
	}
	if *machinesIn != "" {
		fmt.Fprintln(out, "## Machine matrix — predictions across machine presets")
		fmt.Fprintln(out)
		mustWrite(h.MachineMatrix(names, machineNames), out)
	}
	if all || *calib {
		text, series := experiments.Calibration(cfg)
		fmt.Fprintln(out, "## Eq. (6)/(7) — memory model calibration")
		fmt.Fprintln(out)
		fmt.Fprintln(out, text)
		for _, s := range series {
			mustWrite(s.Table(), out)
			if *csvDir != "" {
				writeCSV(*csvDir, "calibration-"+slug(s.Name)+".csv", s.WriteCSV)
			}
		}
	}

	if cfg.Metrics != nil {
		mout := os.Stdout
		if *metricsOut != "-" {
			f, err := os.Create(*metricsOut)
			if err != nil {
				fmt.Fprintln(os.Stderr, "metrics export:", err)
				os.Exit(1)
			}
			defer f.Close()
			mout = f
		}
		if err := prophet.WriteMetricsJSON(mout, cfg.Metrics); err != nil {
			fmt.Fprintln(os.Stderr, "metrics export:", err)
			os.Exit(1)
		}
		if *metricsOut != "-" {
			fmt.Fprintln(out, "metrics written to", *metricsOut)
		}
	}

	if err := ctx.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "ppexp: %v — results above are partial\n", err)
		stopProfiles() // os.Exit skips the defer; a timed-out run is exactly one worth profiling
		os.Exit(3)
	}
}

var markdownOut bool

func mustWrite(t *report.Table, out *os.File) {
	var err error
	if markdownOut {
		err = t.WriteMarkdown(out)
	} else {
		_, err = t.WriteTo(out)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func slug(s string) string {
	s = strings.ToLower(s)
	var b strings.Builder
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			b.WriteRune(r)
		default:
			b.WriteByte('-')
		}
	}
	return strings.Trim(b.String(), "-")
}

func writeCSV(dir, name string, write func(w io.Writer) error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := write(f); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
