package main

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"prophet/internal/experiments"
	"prophet/internal/sim"
)

// update regenerates the golden files instead of comparing:
//
//	go test ./cmd/ppexp -run TestGolden -update
var update = flag.Bool("update", false, "rewrite golden files under results/golden/")

// goldenMachine matches the experiment tests' fast machine: exact
// makespans (no context-switch cost), small quantum.
func goldenMachine() sim.Config {
	return sim.Config{Cores: 12, Quantum: 10_000, ContextSwitch: -1}
}

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("..", "..", "results", "golden", name)
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (regenerate with `go test ./cmd/ppexp -update`): %v", err)
	}
	if got != string(want) {
		t.Errorf("%s drifted from golden file (refresh with `go test ./cmd/ppexp -update` if intended):\n--- got ---\n%s--- want ---\n%s", name, got, want)
	}
}

// TestGoldenTable1 pins the report format of the static Table I.
func TestGoldenTable1(t *testing.T) {
	checkGolden(t, "table1.golden", experiments.Table1().String())
}

// TestGoldenRanking pins the schedule-ranking table on a small
// fixed-seed sample set — both the report format and the deterministic
// accuracy numbers. Runs on the parallel harness, whose output is
// byte-identical to serial at any worker count.
func TestGoldenRanking(t *testing.T) {
	h := experiments.New(experiments.Config{
		Machine: goldenMachine(), Samples: 10, Seed: 13, Workers: 4,
	})
	checkGolden(t, "ranking.golden", h.ScheduleRanking().String())
}
