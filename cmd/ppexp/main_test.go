package main

import "testing"

func TestSlug(t *testing.T) {
	cases := map[string]string{
		"Test1, 8-core, FF":     "test1--8-core--ff",
		"NPB-FT — NPB FT (x/y)": "npb-ft---npb-ft--x-y",
		"already-clean":         "already-clean",
		"---Trim Me---":         "trim-me",
		"MiXeD CaSe 123":        "mixed-case-123",
		"calibration t=12":      "calibration-t-12",
	}
	for in, want := range cases {
		if got := slug(in); got != want {
			t.Errorf("slug(%q) = %q, want %q", in, got, want)
		}
	}
}
