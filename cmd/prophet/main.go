// Command prophet profiles one of the built-in annotated benchmarks (or
// loads a previously exported program tree) and prints its predicted
// speedups — the end-to-end tool workflow of the paper's Fig. 3.
//
// Usage:
//
//	prophet -bench NPB-FT [-method synthesizer] [-cores 2,4,6,8,10,12]
//	        [-machines westmere12,embedded4+4] [-sched dynamic1] [-mem]
//	        [-real] [-advise [-advise-json advice.json]]
//	        [-tree out.json] [-dot out.dot]
//	        [-trace trace.json] [-metrics metrics.json]
//	prophet -load tree.json [-method ff] ...
//	prophet -import prof.pb.gz [-sample-type cpu] [-collapse 0.001] ...
//	prophet -import-folded stacks.txt ...
//
// Use -list to see the available benchmarks and machine presets.
//
// -machines predicts the same grid for several machine presets and
// prints one speedup column per machine (the profile is re-profiled and
// the memory model recalibrated per machine, cached for the run).
// Without -machines, output is unchanged from earlier versions.
//
// -import ingests a pprof protobuf profile (go test -cpuprofile,
// runtime/pprof, net/http/pprof; gzipped or raw) and -import-folded a
// folded-stacks text capture (perf script | stackcollapse); both
// convert the sampled call tree into a program tree and predict over
// it, so any profiled binary becomes a scenario. A profile that fails
// to decode, or decodes to zero samples, is a usage error (exit 2).
//
// -advise runs the causal advisor: a paradigm × schedule × cores sweep
// plus one what-if experiment per candidate region (top-level sections
// and serial runs), ranking regions by the marginal speedup
// parallelizing each would unlock at the largest core count — marginal
// < 1.0x is an explicit anti-recommendation. The advisor defaults to
// the synthesizer method unless -method is given explicitly.
// -advise-json writes the same advice as JSON (byte-identical to the
// daemon's POST /v1/advise for the same workload, cores and method).
//
// -trace records every simulated machine run and emulation as Chrome
// trace_event JSON (one lane per simulated core; load the file in
// chrome://tracing or https://ui.perfetto.dev). -metrics writes a JSON
// snapshot of pipeline metrics — stage wall times, DES event counts —
// to the given file ("-" for stdout).
//
// Exit codes: 0 success; 1 profiling/prediction failure (a deadlocked
// emulation also prints its wait graph); 2 usage error; 3 the -timeout
// deadline expired.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"

	"prophet"
	"prophet/internal/pprofutil"
	"prophet/internal/profimport"
	"prophet/internal/report"
	"prophet/internal/workloads"
)

// Exit codes.
const (
	exitErr      = 1 // profiling or prediction failed
	exitUsage    = 2 // bad flags or input
	exitDeadline = 3 // -timeout expired
)

// stopProfiles flushes -cpuprofile/-memprofile output; fail() calls it
// because os.Exit skips main's defer, and a failing run (a deadlocked
// emulation, an expired deadline) is often the one worth profiling.
var stopProfiles = func() {}

// fail prints err for its stage and exits with the matching code. A
// deadline expiry exits 3; a deadlock additionally prints the wait-graph
// diagnostic so the user can see which virtual threads hold which locks.
func fail(stage string, err error) {
	stopProfiles()
	fmt.Fprintf(os.Stderr, "%s: %v\n", stage, err)
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		os.Exit(exitDeadline)
	}
	var dl *prophet.DeadlockError
	if errors.As(err, &dl) {
		fmt.Fprintf(os.Stderr, "wait graph:\n%s\n", dl.WaitGraph())
	}
	os.Exit(exitErr)
}

func main() {
	var (
		benchName  = flag.String("bench", "", "benchmark to analyze (see -list)")
		loadPath   = flag.String("load", "", "load a program tree exported with -tree instead of profiling a benchmark")
		importPath = flag.String("import", "", "import a pprof protobuf profile (gzipped or raw) as the program tree")
		foldedPath = flag.String("import-folded", "", "import a folded-stacks text capture (stackcollapse format) as the program tree")
		sampleType = flag.String("sample-type", "", "pprof value column to import, by type name (default: cpu, then the profile's default)")
		collapse   = flag.Float64("collapse", 0, "leaf-collapse threshold: fold subtrees below this fraction of total weight (0 = default 0.001, negative disables)")
		list       = flag.Bool("list", false, "list available benchmarks")
		method     = flag.String("method", "ff", "prediction method: ff | synthesizer | suitability | amdahl | critical-path")
		coresFlag  = flag.String("cores", "2,4,6,8,10,12", "comma-separated CPU counts")
		machFlag   = flag.String("machines", "", "comma-separated machine presets to predict for, one speedup column each (see -list; empty = the profile's machine)")
		schedName  = flag.String("sched", "", "OpenMP schedule: static | static1 | dynamic1 | guided (default: the benchmark's)")
		useMem     = flag.Bool("mem", true, "apply the memory performance model (PredM)")
		withReal   = flag.Bool("real", false, "also run the machine ground truth (slow)")
		treeOut    = flag.String("tree", "", "write the program tree as JSON to this file")
		dotOut     = flag.String("dot", "", "write the program tree as Graphviz DOT to this file")
		regions    = flag.Bool("regions", false, "print the per-region work/span/self-parallelism profile")
		timeline   = flag.Bool("timeline", false, "render a per-core timeline of the machine ground truth at the largest core count")
		advise     = flag.Bool("advise", false, "sweep paradigms/schedules/cores, rank candidate regions by marginal speedup, and print a recommendation")
		adviseJSON = flag.String("advise-json", "", "with -advise, also write the advice as JSON to this file (\"-\" = stdout); implies -advise")
		timeout    = flag.Duration("timeout", 0, "abort profiling and prediction after this duration, exiting 3 (0 = no limit)")
		traceOut   = flag.String("trace", "", "write Chrome trace_event JSON of the simulated machine runs to this file")
		metricsOut = flag.String("metrics", "", "write a pipeline metrics snapshot as JSON to this file (\"-\" = stdout)")
		cpuProf    = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProf    = flag.String("memprofile", "", "write a heap (allocs) profile to this file at exit")
		surrFlag   = flag.Bool("surrogate", false, "arm the learned surrogate predictor: confident repeat cells answer from the model instead of emulating (surrogate.* series land in -metrics)")
		surrMaxErr = flag.Float64("surrogate-maxerr", 0.05, "max cross-validated relative error a surrogate answer may carry")
	)
	flag.Parse()

	stop, err := pprofutil.Start(*cpuProf, *memProf)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(exitUsage)
	}
	stopProfiles = stop
	defer stop()

	var (
		traceBuf *prophet.TraceBuffer
		metrics  *prophet.Metrics
		observer prophet.Observer
	)
	if *traceOut != "" {
		traceBuf = &prophet.TraceBuffer{}
		observer.Trace = traceBuf
	}
	if *metricsOut != "" {
		metrics = &prophet.Metrics{}
		observer.Metrics = metrics
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	sources := 0
	for _, s := range []string{*benchName, *loadPath, *importPath, *foldedPath} {
		if s != "" {
			sources++
		}
	}
	if sources > 1 {
		fmt.Fprintln(os.Stderr, "at most one of -bench, -load, -import, -import-folded may be given")
		os.Exit(exitUsage)
	}
	if *list || sources == 0 {
		fmt.Println("available benchmarks:")
		for _, n := range workloads.Names() {
			w, _ := workloads.ByName(n)
			fmt.Printf("  %-11s %s\n", n, w.Desc)
		}
		fmt.Println("machine presets (-machines):")
		for _, sp := range prophet.MachinePresets() {
			fmt.Printf("  %-12s %2d cores — %s\n", sp.Name, sp.Cores(), sp.Desc)
		}
		if sources == 0 && !*list {
			os.Exit(2)
		}
		return
	}

	cores, err := prophet.ParseCores(*coresFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	m, err := prophet.ParseMethod(*method)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	var machines []*prophet.MachineSpec
	if *machFlag != "" {
		machines, err = prophet.ParseMachines(*machFlag)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}
	var surr *prophet.Surrogate
	if *surrFlag {
		if *surrMaxErr <= 0 || *surrMaxErr >= 1 {
			fmt.Fprintf(os.Stderr, "-surrogate-maxerr must be in (0, 1), got %v\n", *surrMaxErr)
			os.Exit(2)
		}
		surr = prophet.NewSurrogate(prophet.SurrogateConfig{MaxRelErr: *surrMaxErr, Metrics: metrics})
	}

	var (
		prof     *prophet.Profile
		name     string
		paradigm prophet.Paradigm
		sched    prophet.Sched
	)
	switch {
	case *importPath != "" || *foldedPath != "":
		root, stats, err := importTree(*importPath, *foldedPath, *sampleType, *collapse, metrics)
		if err != nil {
			fmt.Fprintln(os.Stderr, "import:", err)
			os.Exit(exitUsage)
		}
		name = *importPath + *foldedPath // the one that is set
		fmt.Printf("imported %s: %s\n", name, stats)
		prof, err = prophet.ProfileTreeCtx(ctx, root, &prophet.Options{ThreadCounts: cores, Observer: observer, Surrogate: surr})
		if err != nil {
			fail("profile", err)
		}
		sched = prophet.Static
	case *loadPath != "":
		data, err := os.ReadFile(*loadPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		var root prophet.Tree
		if err := json.Unmarshal(data, &root); err != nil {
			fmt.Fprintln(os.Stderr, "tree parse:", err)
			os.Exit(2)
		}
		prof, err = prophet.ProfileTreeCtx(ctx, &root, &prophet.Options{ThreadCounts: cores, Observer: observer, Surrogate: surr})
		if err != nil {
			fail("profile", err)
		}
		name = *loadPath
		sched = prophet.Static
	default:
		w, err := workloads.ByName(*benchName)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		fmt.Printf("profiling %s (%s)...\n", w.Name, w.Desc)
		prof, err = prophet.ProfileProgramCtx(ctx, w.Program, &prophet.Options{ThreadCounts: cores, Observer: observer, Surrogate: surr})
		if err != nil {
			fail("profile", err)
		}
		name = w.Name
		paradigm = w.Paradigm
		sched = w.Sched
		fmt.Printf("serial: %d cycles; tree: %s\n\n", prof.SerialCycles, prof.Compression)
	}
	if *schedName != "" {
		sched, err = prophet.ParseSched(*schedName)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}

	if len(machines) > 0 {
		// Machine matrix: one predicted-speedup column per preset (plus
		// a ground-truth column each with -real).
		headers := []string{"cores"}
		for _, sp := range machines {
			headers = append(headers, sp.Name)
			if *withReal {
				headers = append(headers, sp.Name+" (real)")
			}
		}
		t := report.NewTable(fmt.Sprintf("%s — %s, %s, %v, machine matrix", name, m, paradigm, sched), headers...)
		for _, c := range cores {
			row := []string{strconv.Itoa(c)}
			for _, sp := range machines {
				req := prophet.Request{Method: m, Threads: c, Paradigm: paradigm, Sched: sched, MemoryModel: *useMem, Machine: sp.Name}
				est, err := prof.EstimateCtx(ctx, req)
				if err != nil {
					fail(fmt.Sprintf("predict %d cores on %s", c, sp.Name), err)
				}
				row = append(row, fmt.Sprintf("%.2f", est.Speedup))
				if *withReal {
					real, err := prof.RealSpeedupCtx(ctx, req)
					if err != nil {
						fail(fmt.Sprintf("real run %d cores on %s", c, sp.Name), err)
					}
					row = append(row, fmt.Sprintf("%.2f", real))
				}
			}
			t.AddRow(row...)
		}
		if _, err := t.WriteTo(os.Stdout); err != nil {
			os.Exit(1)
		}
	} else {
		headers := []string{"cores", "predicted speedup"}
		if *withReal {
			headers = append(headers, "real (machine)")
		}
		t := report.NewTable(fmt.Sprintf("%s — %s, %s, %v", name, m, paradigm, sched), headers...)
		for _, c := range cores {
			req := prophet.Request{Method: m, Threads: c, Paradigm: paradigm, Sched: sched, MemoryModel: *useMem}
			est, err := prof.EstimateCtx(ctx, req)
			if err != nil {
				fail(fmt.Sprintf("predict %d cores", c), err)
			}
			row := []string{strconv.Itoa(c), fmt.Sprintf("%.2f", est.Speedup)}
			if *withReal {
				real, err := prof.RealSpeedupCtx(ctx, req)
				if err != nil {
					fail(fmt.Sprintf("real run %d cores", c), err)
				}
				row = append(row, fmt.Sprintf("%.2f", real))
			}
			t.AddRow(row...)
		}
		if _, err := t.WriteTo(os.Stdout); err != nil {
			os.Exit(1)
		}
	}

	if *advise || *adviseJSON != "" {
		// The advisor's documented default method is Synthesizer (the
		// paper's "more realistic predictions" choice) — honour it unless
		// the user explicitly passed -method; the flag's own default
		// ("ff") only governs the prediction table above.
		adviseMethod := prophet.Synthesizer
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "method" {
				adviseMethod = m
			}
		})
		adv, err := prof.AdviseCtx(ctx, &prophet.AdviseOptions{Threads: cores, Method: adviseMethod})
		if err != nil {
			fail("advise", err)
		}
		if *advise {
			fmt.Println(adv)
		}
		if *adviseJSON != "" {
			data, err := json.MarshalIndent(adv, "", "  ")
			if err == nil && *adviseJSON == "-" {
				_, err = fmt.Printf("%s\n", data)
			} else if err == nil {
				err = os.WriteFile(*adviseJSON, append(data, '\n'), 0o644)
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, "advise export:", err)
				os.Exit(1)
			}
			if *adviseJSON != "-" {
				fmt.Println("advice written to", *adviseJSON)
			}
		}
	}

	if *timeline {
		top := cores[len(cores)-1]
		gantt, _, err := prof.TimelineCtx(ctx, prophet.Request{
			Threads: top, Paradigm: paradigm, Sched: sched,
		}, 100)
		if err != nil {
			fail("timeline", err)
		}
		fmt.Printf("machine execution, %d threads:\n", top)
		fmt.Print(gantt)
		fmt.Println()
	}

	if *regions {
		rt := report.NewTable("parallel regions (ranked by work)",
			"region", "nested", "executions", "work", "span", "self-par", "coverage")
		for _, r := range prof.Regions() {
			rt.AddRow(r.Name,
				fmt.Sprintf("%v", r.Nested),
				strconv.Itoa(r.Executions),
				strconv.FormatInt(int64(r.Work), 10),
				strconv.FormatInt(int64(r.Span), 10),
				fmt.Sprintf("%.1f", r.SelfParallelism),
				fmt.Sprintf("%.1f%%", 100*r.Coverage))
		}
		if _, err := rt.WriteTo(os.Stdout); err != nil {
			os.Exit(1)
		}
	}

	if *treeOut != "" {
		data, err := json.MarshalIndent(prof.Tree, "", " ")
		if err == nil {
			err = os.WriteFile(*treeOut, data, 0o644)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "tree export:", err)
			os.Exit(1)
		}
		fmt.Println("tree written to", *treeOut)
	}
	if *dotOut != "" {
		f, err := os.Create(*dotOut)
		if err == nil {
			err = prof.Tree.WriteDOT(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "dot export:", err)
			os.Exit(1)
		}
		fmt.Println("dot written to", *dotOut)
	}

	if traceBuf != nil {
		f, err := os.Create(*traceOut)
		if err == nil {
			err = traceBuf.WriteChromeTrace(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "trace export:", err)
			os.Exit(1)
		}
		fmt.Printf("trace written to %s (%d events; load in chrome://tracing or ui.perfetto.dev)\n",
			*traceOut, traceBuf.Len())
	}
	if metrics != nil {
		var err error
		if *metricsOut == "-" {
			err = prophet.WriteMetricsJSON(os.Stdout, metrics)
		} else {
			var f *os.File
			f, err = os.Create(*metricsOut)
			if err == nil {
				err = exportMetricsTo(metrics, f)
			}
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "metrics export:", err)
			os.Exit(1)
		}
		if *metricsOut != "-" {
			fmt.Println("metrics written to", *metricsOut)
		}
	}
}

// importTree reads an externally captured execution profile (pprof
// protobuf when pprofPath is set, folded-stacks text when foldedPath
// is) and converts it to a program tree. Errors are typed: errors.Is
// against prophet.ErrProfileCorrupt / ErrProfileEmpty /
// ErrProfileTooLarge; main maps all of them to exit code 2 — a bad
// input is a usage error, not a prediction failure.
func importTree(pprofPath, foldedPath, sampleType string, collapse float64, metrics *prophet.Metrics) (*prophet.Tree, profimport.Stats, error) {
	path, from := pprofPath, profimport.FromPprof
	if foldedPath != "" {
		path, from = foldedPath, profimport.FromFolded
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, profimport.Stats{}, err
	}
	res, err := from(data, &profimport.Options{
		SampleType:       sampleType,
		CollapseFraction: collapse,
		Metrics:          metrics,
	})
	if err != nil {
		return nil, profimport.Stats{}, err
	}
	return res.Tree, res.Stats, nil
}

// exportMetricsTo writes the metrics snapshot to w and closes it,
// propagating the Close error when the write itself succeeded: close is
// the last chance to hear the kernel reject buffered data (full disk,
// broken pipe), and the adjacent dot/trace export paths already report
// it. A dropped close error here used to let the command print "metrics
// written" and exit 0 with a truncated file on disk.
func exportMetricsTo(m *prophet.Metrics, w io.WriteCloser) error {
	err := prophet.WriteMetricsJSON(w, m)
	if cerr := w.Close(); err == nil {
		err = cerr
	}
	return err
}
