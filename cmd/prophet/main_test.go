package main

import (
	"testing"

	"prophet"
)

// The flag values this command accepts are parsed by the public
// prophet.Parse* family; these tests pin the CLI spellings.

func TestParseCores(t *testing.T) {
	got, err := prophet.ParseCores("2, 4,12")
	if err != nil || len(got) != 3 || got[0] != 2 || got[2] != 12 {
		t.Fatalf("ParseCores = %v, %v", got, err)
	}
	for _, bad := range []string{"", "a", "0", "-1", "2,,4"} {
		if _, err := prophet.ParseCores(bad); err == nil {
			t.Errorf("ParseCores(%q) accepted", bad)
		}
	}
}

func TestParseMethod(t *testing.T) {
	cases := map[string]prophet.Method{
		"ff":            prophet.FastForward,
		"synthesizer":   prophet.Synthesizer,
		"syn":           prophet.Synthesizer,
		"suitability":   prophet.Suitability,
		"suit":          prophet.Suitability,
		"amdahl":        prophet.AmdahlLaw,
		"critical-path": prophet.CriticalPathBound,
		"kismet":        prophet.CriticalPathBound,
	}
	for s, want := range cases {
		got, err := prophet.ParseMethod(s)
		if err != nil || got != want {
			t.Errorf("ParseMethod(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := prophet.ParseMethod("bogus"); err == nil {
		t.Error("bogus method accepted")
	}
}

func TestParseSched(t *testing.T) {
	for s, want := range map[string]prophet.Sched{
		"static":       prophet.Static,
		"static1":      prophet.Static1,
		"dynamic1":     prophet.Dynamic1,
		"guided":       prophet.Guided,
		"(static)":     prophet.Static,
		"(static,1)":   prophet.Static1,
		"(dynamic,1)":  prophet.Dynamic1,
		"(guided)":     prophet.Guided,
		"static,9":     {Kind: prophet.Static1.Kind, Chunk: 9}, // (static,9)
		"(dynamic,16)": {Kind: prophet.Dynamic1.Kind, Chunk: 16},
	} {
		got, err := prophet.ParseSched(s)
		if err != nil || got != want {
			t.Errorf("ParseSched(%q) = %v, %v (want %v)", s, got, err, want)
		}
	}
	for _, bad := range []string{"", "bogus", "static,0", "static,-3", "(static", "guided,2"} {
		if _, err := prophet.ParseSched(bad); err == nil {
			t.Errorf("ParseSched(%q) accepted", bad)
		}
	}
}
