package main

import (
	"testing"

	"prophet"
)

func TestParseCores(t *testing.T) {
	got, err := parseCores("2, 4,12")
	if err != nil || len(got) != 3 || got[0] != 2 || got[2] != 12 {
		t.Fatalf("parseCores = %v, %v", got, err)
	}
	for _, bad := range []string{"", "a", "0", "-1", "2,,4"} {
		if _, err := parseCores(bad); err == nil {
			t.Errorf("parseCores(%q) accepted", bad)
		}
	}
}

func TestParseMethod(t *testing.T) {
	cases := map[string]prophet.Method{
		"ff":            prophet.FastForward,
		"synthesizer":   prophet.Synthesizer,
		"syn":           prophet.Synthesizer,
		"suitability":   prophet.Suitability,
		"suit":          prophet.Suitability,
		"amdahl":        prophet.AmdahlLaw,
		"critical-path": prophet.CriticalPathBound,
		"kismet":        prophet.CriticalPathBound,
	}
	for s, want := range cases {
		got, err := parseMethod(s)
		if err != nil || got != want {
			t.Errorf("parseMethod(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := parseMethod("bogus"); err == nil {
		t.Error("bogus method accepted")
	}
}

func TestParseSched(t *testing.T) {
	for s, want := range map[string]prophet.Sched{
		"static":   prophet.Static,
		"static1":  prophet.Static1,
		"dynamic1": prophet.Dynamic1,
		"guided":   prophet.Guided,
	} {
		got, err := parseSched(s)
		if err != nil || got != want {
			t.Errorf("parseSched(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := parseSched("static,9"); err == nil {
		t.Error("unknown schedule accepted")
	}
}
