package main

import (
	"encoding/json"
	"errors"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"prophet"
	"prophet/internal/profimport"
)

// failingWriteCloser scripts the write/close outcomes of a metrics sink.
type failingWriteCloser struct {
	writeErr error
	closeErr error
	closed   bool
}

func (f *failingWriteCloser) Write(p []byte) (int, error) {
	if f.writeErr != nil {
		return 0, f.writeErr
	}
	return len(p), nil
}

func (f *failingWriteCloser) Close() error {
	f.closed = true
	return f.closeErr
}

// TestExportMetricsToReportsCloseError pins the -metrics export failure
// contract: both write and close errors must surface (the close error
// used to be dropped by a bare `defer f.Close()`, so a truncated metrics
// file exited 0), write errors win over close errors, and the sink is
// closed in every case.
func TestExportMetricsToReportsCloseError(t *testing.T) {
	wErr := errors.New("write exploded")
	cErr := errors.New("close exploded")
	cases := []struct {
		name    string
		sink    failingWriteCloser
		wantErr error
	}{
		{"clean", failingWriteCloser{}, nil},
		{"close error propagates", failingWriteCloser{closeErr: cErr}, cErr},
		{"write error wins", failingWriteCloser{writeErr: wErr, closeErr: cErr}, wErr},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			m := &prophet.Metrics{}
			m.Counter("test.requests").Inc()
			err := exportMetricsTo(m, &c.sink)
			if !errors.Is(err, c.wantErr) {
				t.Fatalf("exportMetricsTo err = %v, want %v", err, c.wantErr)
			}
			if !c.sink.closed {
				t.Fatal("sink not closed")
			}
		})
	}
}

// TestExportMetricsToFullDevice exercises the same path against a real
// kernel-rejected sink where available (/dev/full returns ENOSPC).
func TestExportMetricsToFullDevice(t *testing.T) {
	f, err := os.OpenFile("/dev/full", os.O_WRONLY, 0)
	if err != nil {
		t.Skip("/dev/full not available:", err)
	}
	if err := exportMetricsTo(&prophet.Metrics{}, f); err == nil {
		t.Fatal("writing metrics to /dev/full reported success")
	} else if !strings.Contains(err.Error(), "no space") && !errors.Is(err, os.ErrClosed) {
		t.Logf("got error (accepted): %v", err)
	}
}

// TestImportTreeTypedErrors pins the -import error taxonomy: every
// importTree failure is typed, dispatchable with errors.Is against the
// public prophet sentinels alone (the PR 2 contract).
func TestImportTreeTypedErrors(t *testing.T) {
	dir := t.TempDir()
	empty := filepath.Join(dir, "empty.pb.gz")
	if err := os.WriteFile(empty, profimport.GzipPprof(profimport.EncodePprof(nil, "cpu", "nanoseconds")), 0o644); err != nil {
		t.Fatal(err)
	}
	junk := filepath.Join(dir, "junk.pb")
	if err := os.WriteFile(junk, []byte{0xff, 0xff, 0xff}, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := importTree(empty, "", "", 0, nil); !errors.Is(err, prophet.ErrProfileEmpty) {
		t.Errorf("empty profile: err = %v, want prophet.ErrProfileEmpty", err)
	}
	if _, _, err := importTree(junk, "", "", 0, nil); !errors.Is(err, prophet.ErrProfileCorrupt) {
		t.Errorf("junk profile: err = %v, want prophet.ErrProfileCorrupt", err)
	}
	if _, _, err := importTree("", filepath.Join(dir, "nope.txt"), "", 0, nil); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("missing file: err = %v, want os.ErrNotExist", err)
	}
}

// TestImportEmptyProfileExitCode is the end-to-end regression for the
// CLI contract: `prophet -import` of a profile with zero samples exits
// with code 2 (usage error — consistent with every other bad-input
// path), not 1, and names the typed error on stderr. The test re-execs
// itself as the prophet main.
func TestImportEmptyProfileExitCode(t *testing.T) {
	if os.Getenv("PROPHET_TEST_IMPORT_MAIN") == "1" {
		os.Args = []string{"prophet", "-import", os.Getenv("PROPHET_TEST_IMPORT_FILE")}
		main()
		return // unreachable: main exits
	}
	file := filepath.Join(t.TempDir(), "empty.pb.gz")
	if err := os.WriteFile(file, profimport.GzipPprof(profimport.EncodePprof(nil, "cpu", "nanoseconds")), 0o644); err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(os.Args[0], "-test.run", "TestImportEmptyProfileExitCode")
	cmd.Env = append(os.Environ(), "PROPHET_TEST_IMPORT_MAIN=1", "PROPHET_TEST_IMPORT_FILE="+file)
	out, err := cmd.CombinedOutput()
	var ee *exec.ExitError
	if !errors.As(err, &ee) {
		t.Fatalf("expected a nonzero exit, got err=%v output=%s", err, out)
	}
	if ee.ExitCode() != exitUsage {
		t.Errorf("exit code = %d, want %d; output:\n%s", ee.ExitCode(), exitUsage, out)
	}
	if !strings.Contains(string(out), "no samples") {
		t.Errorf("stderr does not name the typed error:\n%s", out)
	}
}

// The flag values this command accepts are parsed by the public
// prophet.Parse* family; these tests pin the CLI spellings.

func TestParseCores(t *testing.T) {
	got, err := prophet.ParseCores("2, 4,12")
	if err != nil || len(got) != 3 || got[0] != 2 || got[2] != 12 {
		t.Fatalf("ParseCores = %v, %v", got, err)
	}
	for _, bad := range []string{"", "a", "0", "-1", "2,,4"} {
		if _, err := prophet.ParseCores(bad); err == nil {
			t.Errorf("ParseCores(%q) accepted", bad)
		}
	}
}

func TestParseMethod(t *testing.T) {
	cases := map[string]prophet.Method{
		"ff":            prophet.FastForward,
		"synthesizer":   prophet.Synthesizer,
		"syn":           prophet.Synthesizer,
		"suitability":   prophet.Suitability,
		"suit":          prophet.Suitability,
		"amdahl":        prophet.AmdahlLaw,
		"critical-path": prophet.CriticalPathBound,
		"kismet":        prophet.CriticalPathBound,
	}
	for s, want := range cases {
		got, err := prophet.ParseMethod(s)
		if err != nil || got != want {
			t.Errorf("ParseMethod(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := prophet.ParseMethod("bogus"); err == nil {
		t.Error("bogus method accepted")
	}
}

func TestParseSched(t *testing.T) {
	for s, want := range map[string]prophet.Sched{
		"static":       prophet.Static,
		"static1":      prophet.Static1,
		"dynamic1":     prophet.Dynamic1,
		"guided":       prophet.Guided,
		"(static)":     prophet.Static,
		"(static,1)":   prophet.Static1,
		"(dynamic,1)":  prophet.Dynamic1,
		"(guided)":     prophet.Guided,
		"static,9":     {Kind: prophet.Static1.Kind, Chunk: 9}, // (static,9)
		"(dynamic,16)": {Kind: prophet.Dynamic1.Kind, Chunk: 16},
	} {
		got, err := prophet.ParseSched(s)
		if err != nil || got != want {
			t.Errorf("ParseSched(%q) = %v, %v (want %v)", s, got, err, want)
		}
	}
	for _, bad := range []string{"", "bogus", "static,0", "static,-3", "(static", "guided,2"} {
		if _, err := prophet.ParseSched(bad); err == nil {
			t.Errorf("ParseSched(%q) accepted", bad)
		}
	}
}

// TestAdviseDefaultMethod is the end-to-end regression for the advise
// default: `prophet -advise` must use the synthesizer unless -method is
// given explicitly — the old code inherited -method's flag default
// ("ff"), silently diverging from the documented advisor default and
// from POST /v1/advise. The test re-execs itself as the prophet main
// and inspects the -advise-json output.
func TestAdviseDefaultMethod(t *testing.T) {
	if os.Getenv("PROPHET_TEST_ADVISE_MAIN") == "1" {
		os.Args = append([]string{"prophet"}, strings.Fields(os.Getenv("PROPHET_TEST_ADVISE_ARGS"))...)
		main()
		return
	}
	run := func(t *testing.T, extra string) prophet.Advice {
		t.Helper()
		file := filepath.Join(t.TempDir(), "advice.json")
		cmd := exec.Command(os.Args[0], "-test.run", "TestAdviseDefaultMethod")
		cmd.Env = append(os.Environ(),
			"PROPHET_TEST_ADVISE_MAIN=1",
			"PROPHET_TEST_ADVISE_ARGS=-bench NPB-EP -cores 2 "+extra+" -advise-json "+file)
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("prophet -advise failed: %v\n%s", err, out)
		}
		data, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		var adv prophet.Advice
		if err := json.Unmarshal(data, &adv); err != nil {
			t.Fatalf("advice JSON: %v\n%s", err, data)
		}
		if len(adv.Sweep) == 0 {
			t.Fatalf("advice has no sweep:\n%s", data)
		}
		return adv
	}
	t.Run("default is synthesizer", func(t *testing.T) {
		for _, e := range run(t, "").Sweep {
			if e.Request.Method != prophet.Synthesizer {
				t.Fatalf("sweep cell method = %s, want %s (-method unset)", e.Request.Method, prophet.Synthesizer)
			}
		}
	})
	t.Run("explicit -method wins", func(t *testing.T) {
		for _, e := range run(t, "-method ff").Sweep {
			if e.Request.Method != prophet.FastForward {
				t.Fatalf("sweep cell method = %s, want %s (-method ff)", e.Request.Method, prophet.FastForward)
			}
		}
	})
}
