// Command prophetd is the prediction service daemon: it loads the
// registered workload profiles once (profiling + memory-model
// calibration) and serves speedup predictions over HTTP — the paper's
// per-run tool (cmd/prophet) turned into a long-lived service, so the
// profiles, the calibrated model and the estimate cache survive across
// requests.
//
// Usage:
//
//	prophetd [-addr :8057] [-bench all | MD-OMP,NPB-FT] [-cores 2,4,6,8,10,12]
//	         [-workers N] [-max-inflight M] [-cache 4096] [-no-mem]
//	         [-request-timeout 30s] [-drain 15s]
//	         [-surrogate [-surrogate-maxerr 0.05] [-surrogate-seed N]]
//	prophetd -cluster -peers http://h1:8057,http://h2:8057 [-self URL]
//	         [-replicas 2] [-hedge-after 30ms] [-retries 1]
//	         [-probe-interval 1s] [-breaker-failures 3] [-breaker-cooldown 2s]
//	prophetd loadgen [-addr http://127.0.0.1:8057 | -addrs URL,URL,...]   (see loadgen.go)
//
// Endpoints:
//
//	POST /v1/predict   one prophet.Request against a workload
//	POST /v1/sweep     a cores × paradigm × sched grid (Fig. 11/12 shape)
//	POST /v1/advise    the causal advisor: config sweep + per-region
//	                   what-if experiments, ranked by marginal speedup
//	                   (byte-identical to prophet -advise)
//	GET  /v1/workloads registered workloads
//	POST /v1/workloads?name=N upload a pprof or folded-stacks profile
//	                   and register it as a servable workload
//	GET  /v1/machines  machine presets    POST /v1/machines  register a
//	                   custom machine spec (JSON MachineSpec body)
//	GET  /healthz      liveness       GET /readyz  profiles loaded
//	GET  /metrics      JSON snapshot of the obs registry
//
// Overload returns 429 with Retry-After; SIGINT/SIGTERM drain in-flight
// predictions for up to -drain before exiting.
//
// Exit codes: 0 clean shutdown; 1 load/serve failure; 2 usage error.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"prophet"
	"prophet/internal/cluster"
	"prophet/internal/server"
	"prophet/internal/workloads"
)

func main() {
	log.SetFlags(log.LstdFlags | log.Lmicroseconds)
	log.SetPrefix("prophetd: ")
	if len(os.Args) > 1 && os.Args[1] == "loadgen" {
		os.Exit(loadgenMain(os.Args[2:]))
	}
	os.Exit(serveMain(os.Args[1:]))
}

func serveMain(args []string) int {
	fs := flag.NewFlagSet("prophetd", flag.ExitOnError)
	var (
		addr        = fs.String("addr", ":8057", "listen address")
		bench       = fs.String("bench", "all", `comma-separated workloads to register ("all" = every benchmark)`)
		coresFlag   = fs.String("cores", "", "comma-separated thread counts to calibrate for (default 2,4,6,8,10,12)")
		workers     = fs.Int("workers", 0, "emulation worker pool size (0 = GOMAXPROCS)")
		maxInflight = fs.Int("max-inflight", 0, "admitted-request limit before 429 (0 = 4×GOMAXPROCS)")
		cacheSize   = fs.Int("cache", 4096, "estimate LRU capacity (negative disables)")
		noMem       = fs.Bool("no-mem", false, "skip memory-model calibration (every estimate behaves as memory_model:false)")
		reqTimeout  = fs.Duration("request-timeout", 30*time.Second, "per-request deadline cap (negative = none)")
		drain       = fs.Duration("drain", 15*time.Second, "graceful-shutdown drain budget")
		batchWindow = fs.Duration("batch-window", 500*time.Microsecond, "linger to coalesce concurrent cells into one batch")
		maxBatch    = fs.Int("max-batch", 64, "max cells per coalesced batch")
		maxImport   = fs.Int64("max-import-bytes", 8<<20, "profile-upload size cap for POST /v1/workloads (negative disables uploads)")

		surrogate       = fs.Bool("surrogate", false, "arm the learned surrogate predictor in front of the emulation stack")
		surrogateMaxErr = fs.Float64("surrogate-maxerr", 0.05, "max cross-validated relative error a surrogate answer may carry")
		surrogateSeed   = fs.Int64("surrogate-seed", 0, "seed for the surrogate's deterministic reservoir sampling")

		clusterMode    = fs.Bool("cluster", false, "serve as one replica of a fleet: route cells by consistent hash across -peers")
		peersFlag      = fs.String("peers", "", "comma-separated base URLs of every replica (this one is added if missing)")
		selfFlag       = fs.String("self", "", "this replica's advertised base URL (default http://127.0.0.1<-addr port>)")
		replicas       = fs.Int("replicas", 2, "ring owners per cell: the primary plus failover/hedge targets")
		hedgeAfter     = fs.Duration("hedge-after", 30*time.Millisecond, "latency budget before a forwarded cell is hedged to the next owner (negative disables)")
		clusterRetries = fs.Int("retries", 1, "transient-failure retries per peer before failing over (negative disables)")
		probeInterval  = fs.Duration("probe-interval", time.Second, "peer health-probe period feeding the circuit breakers (negative disables)")
		breakerFails   = fs.Int("breaker-failures", 3, "consecutive failures that open a peer's circuit")
		breakerCool    = fs.Duration("breaker-cooldown", 2*time.Second, "open-circuit wait before a half-open trial")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	cfg := server.Config{
		Workers:            *workers,
		MaxInFlight:        *maxInflight,
		CacheSize:          *cacheSize,
		DisableMemoryModel: *noMem,
		RequestTimeout:     *reqTimeout,
		BatchWindow:        *batchWindow,
		MaxBatch:           *maxBatch,
		MaxImportBytes:     *maxImport,
	}
	if *bench != "all" && *bench != "" {
		for _, b := range strings.Split(*bench, ",") {
			name := strings.TrimSpace(b)
			if _, err := workloads.ByName(name); err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 2
			}
			cfg.Workloads = append(cfg.Workloads, name)
		}
	}
	if *coresFlag != "" {
		cores, err := prophet.ParseCores(*coresFlag)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		cfg.Cores = cores
	}
	if *surrogate {
		if *surrogateMaxErr <= 0 || *surrogateMaxErr >= 1 {
			fmt.Fprintf(os.Stderr, "prophetd: -surrogate-maxerr must be in (0, 1), got %v\n", *surrogateMaxErr)
			return 2
		}
		cfg.Surrogate = &prophet.SurrogateConfig{
			MaxRelErr: *surrogateMaxErr,
			Seed:      *surrogateSeed,
		}
		log.Printf("surrogate armed: confidence bound %.1f%% rel error", *surrogateMaxErr*100)
	}
	if *clusterMode {
		self := *selfFlag
		if self == "" {
			// Advertise the listen port on loopback — the single-machine
			// fleet default; multi-host fleets must pass -self.
			_, port, err := net.SplitHostPort(*addr)
			if err != nil {
				fmt.Fprintf(os.Stderr, "prophetd: -cluster needs -self when -addr (%q) has no port\n", *addr)
				return 2
			}
			self = "http://127.0.0.1:" + port
		}
		self = cluster.NormalizeAddr(self)
		peers := []string{}
		for _, p := range strings.Split(*peersFlag, ",") {
			if p = strings.TrimSpace(p); p != "" {
				peers = append(peers, cluster.NormalizeAddr(p))
			}
		}
		hasSelf := false
		for _, p := range peers {
			hasSelf = hasSelf || p == self
		}
		if !hasSelf {
			peers = append(peers, self)
		}
		if len(peers) < 2 {
			fmt.Fprintln(os.Stderr, "prophetd: -cluster needs at least one other replica in -peers")
			return 2
		}
		cfg.Cluster = &cluster.Config{
			Self:            self,
			Peers:           peers,
			OwnersPerCell:   *replicas,
			HedgeAfter:      *hedgeAfter,
			Retries:         *clusterRetries,
			ProbeInterval:   *probeInterval,
			BreakerFailures: *breakerFails,
			BreakerCooldown: *breakerCool,
		}
		log.Printf("cluster mode: self=%s fleet=%v owners/cell=%d", self, peers, *replicas)
	}

	srv := server.New(cfg)
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)

	loadCtx, cancelLoad := context.WithCancel(context.Background())
	var sigDuringLoad atomic.Bool
	go func() {
		// A signal during the load aborts it through the library's
		// cancellation paths instead of waiting out the calibration.
		select {
		case <-stop:
			sigDuringLoad.Store(true)
			cancelLoad()
		case <-loadCtx.Done():
		}
	}()

	start := time.Now()
	log.Printf("loading workload profiles...")
	if err := srv.Load(loadCtx); err != nil {
		if sigDuringLoad.Load() {
			log.Printf("interrupted during load; exiting")
			return 0
		}
		log.Printf("load: %v", err)
		return 1
	}
	cancelLoad()
	log.Printf("ready in %v; serving on %s", time.Since(start).Round(time.Millisecond), *addr)

	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe(*addr) }()

	// The load-phase watcher has exited; signals now land here.
	select {
	case err := <-errCh:
		if err != nil {
			log.Printf("serve: %v", err)
			return 1
		}
		return 0
	case sig := <-stop:
		log.Printf("%v: draining in-flight predictions (budget %v)", sig, *drain)
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("shutdown: %v (in-flight work aborted)", err)
			return 1
		}
		log.Printf("drained cleanly")
		return 0
	}
}
