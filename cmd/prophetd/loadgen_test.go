package main

import (
	"context"
	"io"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"prophet"
	"prophet/internal/server"
)

// TestLoadgenPerStreamPercentiles runs the load generator against an
// in-process daemon with the surrogate armed and checks the report
// splits latency percentiles per serving tier (cache vs emulated, and
// surrogate once warm) instead of blending them into one stream.
func TestLoadgenPerStreamPercentiles(t *testing.T) {
	srv := server.New(server.Config{
		Workloads:          []string{"NPB-EP"},
		Cores:              []int{2, 4},
		DisableMemoryModel: true,
		Surrogate:          &prophet.SurrogateConfig{MinSamples: 8, RefitEvery: 4, ShadowEvery: -1, MaxRelErr: 0.5, Seed: 1},
	})
	if err := srv.Load(context.Background()); err != nil {
		t.Fatalf("Load: %v", err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()

	out := captureStdout(t, func() {
		code := loadgenMain([]string{
			"-addr", ts.URL, "-n", "60", "-c", "4",
			"-bench", "NPB-EP", "-cores", "2,4", "-sweep-frac", "0.2", "-seed", "1",
		})
		if code != 0 {
			t.Errorf("loadgen exit %d, want 0", code)
		}
	})
	if !strings.Contains(out, "latency p50") {
		t.Fatalf("no aggregate latency line in:\n%s", out)
	}
	// The 60-shot seed-1 stream repeats cells, so the cache tier must
	// fill; the emulated tier serves the first occurrences.
	for _, stream := range []string{"cache", "emulated"} {
		if !strings.Contains(out, stream+" ") {
			t.Errorf("no %q percentile stream in:\n%s", stream, out)
		}
	}
}

func captureStdout(t *testing.T, fn func()) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		data, _ := io.ReadAll(r)
		done <- string(data)
	}()
	defer func() {
		os.Stdout = old
	}()
	fn()
	w.Close()
	os.Stdout = old
	return <-done
}
