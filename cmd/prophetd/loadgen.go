package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"prophet"
	"prophet/internal/server"
)

// prophetd loadgen hammers a running daemon with a deterministic mix of
// /v1/predict and /v1/sweep requests and reports status counts, cache
// behaviour and latency percentiles — enough to see the backpressure
// (429s under a small -max-inflight) and the cache warming up (second
// run of the same seed is nearly all hits).
//
// A 429 is not a failure: the generator honours the server's
// Retry-After advisory (capped by -max-backoff) for up to -max-retries
// attempts per request, the way a well-behaved client rides out
// backpressure.
//
// With -addrs the same stream is spread round-robin over a replica
// fleet — the cluster scenario: per-replica counts expose a dead or
// refusing replica, and the shared estimate routing means the fleet's
// caches stay warm no matter which replica a request lands on.
//
//	prophetd loadgen -addr http://127.0.0.1:8057 -n 200 -c 8 \
//	    -bench MD-OMP,NPB-EP -sweep-frac 0.25 -seed 1
//	prophetd loadgen -addrs http://127.0.0.1:8057,http://127.0.0.1:8058 -n 500
func loadgenMain(args []string) int {
	fs := flag.NewFlagSet("prophetd loadgen", flag.ExitOnError)
	var (
		addr       = fs.String("addr", "http://127.0.0.1:8057", "base URL of the daemon")
		addrsFlag  = fs.String("addrs", "", "comma-separated base URLs of a replica fleet (round-robin; overrides -addr)")
		n          = fs.Int("n", 200, "total requests to issue")
		c          = fs.Int("c", 8, "concurrent clients")
		bench      = fs.String("bench", "MD-OMP", "comma-separated workloads to exercise")
		sweepFrac  = fs.Float64("sweep-frac", 0.25, "fraction of requests that are sweeps (rest are predicts)")
		coresFlag  = fs.String("cores", "2,4,6,8,10,12", "core counts drawn from")
		seed       = fs.Int64("seed", 1, "request-mix seed (same seed = same request stream)")
		timeout    = fs.Duration("timeout", 30*time.Second, "per-request client timeout")
		maxRetries = fs.Int("max-retries", 3, "retry budget per request when the server answers 429")
		maxBackoff = fs.Duration("max-backoff", 2*time.Second, "cap on the Retry-After wait between 429 retries")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	cores, err := prophet.ParseCores(*coresFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	var names []string
	for _, b := range strings.Split(*bench, ",") {
		names = append(names, strings.TrimSpace(b))
	}
	targets := []string{strings.TrimRight(*addr, "/")}
	if *addrsFlag != "" {
		targets = targets[:0]
		for _, a := range strings.Split(*addrsFlag, ",") {
			if a = strings.TrimSpace(a); a != "" {
				targets = append(targets, strings.TrimRight(a, "/"))
			}
		}
		if len(targets) == 0 {
			fmt.Fprintln(os.Stderr, "loadgen: -addrs lists no usable URLs")
			return 2
		}
	}
	methods := []string{"ff", "amdahl", "critical-path", "suitability"}
	scheds := []string{"(static)", "(static,1)", "(dynamic,1)", "(guided)"}

	// Pre-generate the request stream so the worker split cannot change
	// the mix: same seed, same bodies and same per-replica assignment,
	// whatever -c is.
	type shot struct {
		target string
		path   string
		body   []byte
	}
	rng := rand.New(rand.NewSource(*seed))
	shots := make([]shot, *n)
	for i := range shots {
		name := names[rng.Intn(len(names))]
		target := targets[i%len(targets)]
		if rng.Float64() < *sweepFrac {
			body, _ := json.Marshal(map[string]any{
				"workload": name,
				"methods":  []string{methods[rng.Intn(2)]}, // ff | amdahl: cheap enough to hammer
				"scheds":   []string{scheds[rng.Intn(len(scheds))]},
				"cores":    cores,
			})
			shots[i] = shot{target: target, path: "/v1/sweep", body: body}
		} else {
			body, _ := json.Marshal(map[string]any{
				"workload": name,
				"request": map[string]any{
					"method":       methods[rng.Intn(len(methods))],
					"threads":      cores[rng.Intn(len(cores))],
					"sched":        scheds[rng.Intn(len(scheds))],
					"memory_model": rng.Intn(2) == 0,
				},
			})
			shots[i] = shot{target: target, path: "/v1/predict", body: body}
		}
	}

	type targetStats struct {
		requests, failures int
	}
	client := &http.Client{Timeout: *timeout}
	var (
		mu        sync.Mutex
		latencies []time.Duration
		perStream = map[string][]time.Duration{}
		statuses  = map[int]int{}
		perTarget = map[string]*targetStats{}
		failures  int
		retried   int
	)
	for _, tgt := range targets {
		perTarget[tgt] = &targetStats{}
	}
	var wg sync.WaitGroup
	next := make(chan shot)
	workers := *c
	if workers < 1 {
		workers = 1
	}
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for sh := range next {
				var (
					resp *http.Response
					err  error
					lat  time.Duration
				)
				for attempt := 0; ; attempt++ {
					t0 := time.Now()
					resp, err = client.Post(sh.target+sh.path, "application/json", bytes.NewReader(sh.body))
					lat = time.Since(t0)
					if err != nil || resp.StatusCode != http.StatusTooManyRequests || attempt >= *maxRetries {
						break
					}
					// Backpressure: honour the server's advisory, capped
					// so a confused server cannot park the client.
					wait := retryAfter(resp.Header.Get("Retry-After"), attempt)
					if wait > *maxBackoff {
						wait = *maxBackoff
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					mu.Lock()
					retried++
					mu.Unlock()
					time.Sleep(wait)
				}
				mu.Lock()
				st := perTarget[sh.target]
				st.requests++
				if err != nil {
					failures++
					st.failures++
				} else {
					statuses[resp.StatusCode]++
					latencies = append(latencies, lat)
					if resp.StatusCode == http.StatusOK {
						// Bucket by serving tier so a cache (or surrogate)
						// hitting µs answers does not hide emulation tail
						// latency in one blended percentile stream.
						stream := "sweep"
						if sh.path == "/v1/predict" {
							if stream = resp.Header.Get(server.SourceHeader); stream == "" {
								stream = "unlabeled" // pre-source daemon
							}
						}
						perStream[stream] = append(perStream[stream], lat)
					}
				}
				mu.Unlock()
				if err == nil {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
			}
		}()
	}
	for _, sh := range shots {
		next <- sh
	}
	close(next)
	wg.Wait()
	wall := time.Since(start)

	fmt.Printf("loadgen: %d requests in %v (%.0f req/s), %d clients\n",
		*n, wall.Round(time.Millisecond), float64(*n)/wall.Seconds(), workers)
	var codes []int
	for code := range statuses {
		codes = append(codes, code)
	}
	sort.Ints(codes)
	for _, code := range codes {
		fmt.Printf("  HTTP %d: %d\n", code, statuses[code])
	}
	if retried > 0 {
		fmt.Printf("  429 retries honoured: %d\n", retried)
	}
	if failures > 0 {
		fmt.Printf("  transport failures: %d\n", failures)
	}
	if len(targets) > 1 {
		for _, tgt := range targets {
			st := perTarget[tgt]
			fmt.Printf("  %s: %d requests, %d failures\n", tgt, st.requests, st.failures)
		}
	}
	if len(latencies) > 0 {
		sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
		pct := func(ls []time.Duration, p float64) time.Duration {
			return ls[int(p*float64(len(ls)-1))]
		}
		fmt.Printf("  latency p50 %v  p95 %v  p99 %v  max %v\n",
			pct(latencies, 0.50).Round(time.Microsecond), pct(latencies, 0.95).Round(time.Microsecond),
			pct(latencies, 0.99).Round(time.Microsecond), latencies[len(latencies)-1].Round(time.Microsecond))
		// One percentile line per serving tier, so the cache/surrogate
		// fast paths and the emulation path each show their own tail.
		// The aggregate line above is the fallback when a stream is
		// empty (or the daemon predates the source header).
		for _, stream := range []string{"cache", "surrogate", "emulated", "sweep", "unlabeled"} {
			ls := perStream[stream]
			if len(ls) == 0 {
				continue
			}
			sort.Slice(ls, func(i, j int) bool { return ls[i] < ls[j] })
			fmt.Printf("    %-9s (%4d): p50 %v  p95 %v  p99 %v\n", stream, len(ls),
				pct(ls, 0.50).Round(time.Microsecond), pct(ls, 0.95).Round(time.Microsecond),
				pct(ls, 0.99).Round(time.Microsecond))
		}
	}
	if failures > 0 {
		return 1
	}
	return 0
}

// retryAfter parses a Retry-After seconds value; a missing or malformed
// header falls back to a doubling base so retries still spread out.
func retryAfter(header string, attempt int) time.Duration {
	if secs, err := strconv.Atoi(strings.TrimSpace(header)); err == nil && secs >= 0 {
		return time.Duration(secs) * time.Second
	}
	return 100 * time.Millisecond << uint(attempt)
}
