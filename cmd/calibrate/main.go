// Command calibrate runs the paper's §V-D microbenchmark against the
// simulated machine and prints the fitted Ψ and Φ formulas — the
// reproduction of Eq. (6) and Eq. (7).
//
// Usage:
//
//	calibrate [-cores 2,4,6,8,10,12] [-points]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"prophet/internal/experiments"
	"prophet/internal/memmodel"
	"prophet/internal/sim"
)

func main() {
	var (
		coresArg = flag.String("cores", "2,4,6,8,10,12", "thread counts to calibrate")
		points   = flag.Bool("points", false, "print every measured point")
		outFile  = flag.String("o", "", "save the fitted model as JSON to this file")
	)
	flag.Parse()

	var cores []int
	for _, p := range strings.Split(*coresArg, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v < 1 {
			fmt.Fprintf(os.Stderr, "bad core count %q\n", p)
			os.Exit(2)
		}
		cores = append(cores, v)
	}

	m, data, err := memmodel.Calibrate(sim.DefaultConfig(), cores)
	if err != nil {
		fmt.Fprintln(os.Stderr, "calibration failed:", err)
		os.Exit(1)
	}
	fmt.Println("Memory performance model calibrated against the simulated machine")
	fmt.Println("(the reproduction of the paper's Eq. 6/7, fitted on its Westmere):")
	fmt.Println()
	fmt.Print(m)
	fmt.Println()
	fmt.Println("paper Eq. (7):  w = 101481 * d^-0.964   (d in MB/s)")
	fmt.Println("paper Eq. (6):  d2  = (1.35*d + 1758)/2")
	fmt.Println("                d4  = (5756*ln d - 38805)/4")
	fmt.Println("                d8  = (6143*ln d - 39657)/8")
	fmt.Println("                d12 = (6314*ln d - 39621)/12")

	if *outFile != "" {
		data, jerr := json.MarshalIndent(m, "", " ")
		if jerr == nil {
			jerr = os.WriteFile(*outFile, data, 0o644)
		}
		if jerr != nil {
			fmt.Fprintln(os.Stderr, "save:", jerr)
			os.Exit(1)
		}
		fmt.Println("\nmodel written to", *outFile)
	}

	if *points {
		fmt.Println()
		_, series := experiments.Calibration(experiments.Config{Cores: cores})
		for _, s := range series {
			fmt.Print(s.Table())
		}
	}
	_ = data
}
