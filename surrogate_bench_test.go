package prophet_test

import (
	"testing"

	"prophet"
	"prophet/internal/workloads"
)

// surrogateBenchProfile profiles NPB-EP with the given surrogate armed.
// The memory model is disabled so the benchmark isolates the estimate
// path (the calibration cost is identical either way and paid once).
func surrogateBenchProfile(tb testing.TB, surr *prophet.Surrogate) *prophet.Profile {
	tb.Helper()
	w, err := workloads.ByName("NPB-EP")
	if err != nil {
		tb.Fatal(err)
	}
	p, err := prophet.ProfileProgram(w.Program, &prophet.Options{
		DisableMemoryModel: true,
		Surrogate:          surr,
	})
	if err != nil {
		tb.Fatalf("ProfileProgram: %v", err)
	}
	return p
}

func surrogateGrid(methods []prophet.Method, threads []int) []prophet.Request {
	reqs := make([]prophet.Request, 0, len(methods)*len(threads))
	for _, m := range methods {
		for _, t := range threads {
			reqs = append(reqs, prophet.Request{Method: m, Threads: t})
		}
	}
	return reqs
}

// BenchmarkSurrogateEval measures a warm surrogate answering the hot
// tier: the store is seeded from a cores sweep, then every iteration is
// one EstimateCtx that the surrogate serves without emulating. The CI
// surrogate-smoke job gates its ns/op against BenchmarkSimEngineSpec
// (one full emulation of the same shape) at >= 10x.
func BenchmarkSurrogateEval(b *testing.B) {
	surr := prophet.NewSurrogate(prophet.SurrogateConfig{
		MinSamples: 8, RefitEvery: 8, ShadowEvery: -1, MaxRelErr: 0.5, Seed: 1,
	})
	p := surrogateBenchProfile(b, surr)
	grid := surrogateGrid([]prophet.Method{prophet.FastForward},
		[]int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12})
	if err := p.SeedSurrogate(grid, 4); err != nil {
		b.Fatalf("SeedSurrogate: %v", err)
	}
	req := prophet.Request{Method: prophet.FastForward, Threads: 8}
	if est := p.Estimate(req); est.Source != prophet.SourceSurrogate {
		b.Fatalf("warm cell not served by surrogate (source %q)", est.Source)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		est := p.Estimate(req)
		if est.Err != nil {
			b.Fatal(est.Err)
		}
		if est.Source != prophet.SourceSurrogate {
			b.Fatalf("iteration fell back to emulation (source %q)", est.Source)
		}
	}
}

// TestSurrogateShadowAccuracy is the accuracy half of the CI
// surrogate-smoke gate: against golden emulated estimates, surrogate
// answers for trained cells must be exact (memoized emulation results),
// and confident answers for held-out cells must stay within the rel
// error budget on average.
func TestSurrogateShadowAccuracy(t *testing.T) {
	// Golden estimates from an unarmed profile of the same program: the
	// emulator is deterministic, so these are the exact answers.
	plain := surrogateBenchProfile(t, nil)
	golden := func(req prophet.Request) float64 {
		est := plain.Estimate(req)
		if est.Err != nil {
			t.Fatalf("golden estimate %+v: %v", req, est.Err)
		}
		return est.Speedup
	}

	surr := prophet.NewSurrogate(prophet.SurrogateConfig{
		MinSamples: 8, RefitEvery: 4, ShadowEvery: -1, MaxRelErr: 0.05, Seed: 1,
	})
	p := surrogateBenchProfile(t, surr)
	methods := []prophet.Method{prophet.FastForward, prophet.AmdahlLaw}
	train := surrogateGrid(methods, []int{2, 4, 6, 8, 10, 12})
	if err := p.SeedSurrogate(train, 4); err != nil {
		t.Fatalf("SeedSurrogate: %v", err)
	}

	// Trained cells: must come back from the surrogate, byte-for-byte
	// the emulated speedup (the store memoizes exact matches).
	for _, req := range train {
		est := p.Estimate(req)
		if est.Err != nil {
			t.Fatalf("estimate %+v: %v", req, est.Err)
		}
		if est.Source != prophet.SourceSurrogate {
			t.Errorf("trained cell %+v not served by surrogate (source %q)", req, est.Source)
		}
		if want := golden(req); est.Speedup != want {
			t.Errorf("trained cell %+v: surrogate %.6f, emulated %.6f", req, est.Speedup, want)
		}
	}

	// Held-out cells (odd thread counts): the confidence gate may send
	// any of them to emulation — that is correct behaviour, not an
	// error — but the ones the surrogate does serve must average within
	// the 5% budget it was configured with.
	var served int
	var sumRel, worstRel float64
	for _, req := range surrogateGrid(methods, []int{3, 5, 7, 9, 11}) {
		est := p.Estimate(req)
		if est.Err != nil {
			t.Fatalf("estimate %+v: %v", req, est.Err)
		}
		if est.Source != prophet.SourceSurrogate {
			continue
		}
		want := golden(req)
		rel := (est.Speedup - want) / want
		if rel < 0 {
			rel = -rel
		}
		served++
		sumRel += rel
		if rel > worstRel {
			worstRel = rel
		}
	}
	if served > 0 {
		mean := sumRel / float64(served)
		t.Logf("held-out cells served by surrogate: %d, mean rel err %.4f, worst %.4f",
			served, mean, worstRel)
		if mean > 0.05 {
			t.Errorf("held-out mean rel error %.4f exceeds the 5%% budget", mean)
		}
		if worstRel > 0.20 {
			t.Errorf("held-out worst rel error %.4f is far outside the confidence bound", worstRel)
		}
	}
}
