package prophet

import (
	"context"
	"errors"
	"fmt"

	"prophet/internal/clock"
	"prophet/internal/machine"
	"prophet/internal/surrogate"
	"prophet/internal/sweep"
)

// Surrogate is the learned surrogate predictor (internal/surrogate): a
// k-NN / boosted-stumps model over deterministic request features that
// answers hot-tier predictions in microseconds when its cross-validated
// confidence clears the configured bound, and falls back to full
// emulation — feeding the exact result back as training data —
// otherwise. One Surrogate may be shared by any number of profiles and
// goroutines; arm it per profile through Options.Surrogate.
type Surrogate = surrogate.Predictor

// SurrogateConfig tunes a Surrogate; see the field docs in
// internal/surrogate. The zero value selects the defaults (1024-sample
// stores, K=8, 5% confidence bound, shadow sampling every 8th hit).
type SurrogateConfig = surrogate.Config

// NewSurrogate builds a surrogate predictor.
func NewSurrogate(cfg SurrogateConfig) *Surrogate {
	return surrogate.New(cfg)
}

// surrogateInit lazily computes the profile's request-independent
// surrogate inputs: tree-shape/counter stats and the partition key
// (the tree fingerprint, so re-profiled machine variants train in their
// own partitions while tree-only variants share one).
func (p *Profile) surrogateInit() {
	p.surrOnce.Do(func() {
		ts := surrogate.Stats(p.Tree, p.Counters)
		p.surrStats = &ts
		p.surrKey = fmt.Sprintf("tree:%016x", ts.Fingerprint)
	})
}

// SurrogateKey returns the profile's surrogate partition key. External
// drivers (the prediction server) may extend it with their own workload
// identity; the library's own feedback path uses it as-is.
func (p *Profile) SurrogateKey() string {
	p.surrogateInit()
	return p.surrKey
}

// SurrogateFeatures returns the deterministic feature vector the
// surrogate uses for req against this profile: cached tree stats, the
// request scalars, and the target machine spec (req.Machine when named
// and registered, the profile's own machine otherwise). Callers should
// normalize req.Threads first — the vector encodes the thread count as
// given.
func (p *Profile) SurrogateFeatures(req Request) []float64 {
	p.surrogateInit()
	spec := p.opts.Machine.Spec
	if req.Machine != "" {
		if s, err := machine.ParseSpec(req.Machine); err == nil {
			spec = s
		}
	}
	rf := surrogate.RequestFeatures{
		Method:      uint8(req.Method),
		Threads:     req.Threads,
		Paradigm:    uint8(req.Paradigm),
		SchedKind:   uint8(req.Sched.Kind),
		SchedChunk:  req.Sched.Chunk,
		MemoryModel: req.MemoryModel && p.Model != nil,
	}
	return surrogate.Vector(p.surrStats, rf, spec)
}

// surrogateQuery is the EstimateCtx-side view: by the time the hook
// runs, machine-variant recursion has already resolved req.Machine, so
// the profile's own spec is the target.
func (p *Profile) surrogateQuery(req Request) (key string, vec []float64) {
	return p.SurrogateKey(), p.SurrogateFeatures(req)
}

// surrogateEstimate wraps a surrogate prediction in the wire format:
// the same fields an emulated estimate carries, plus Source set to
// SourceSurrogate (emulated estimates omit it, keeping their payloads
// byte-identical to the pre-surrogate format).
func surrogateEstimate(req Request, speedup float64, serial clock.Cycles) Estimate {
	est := Estimate{Request: req, Speedup: speedup, Source: SourceSurrogate}
	if speedup > 0 {
		est.Time = clock.Cycles(float64(serial)/speedup + 0.5)
	}
	return est
}

// SeedSurrogate pre-seeds the surrogate's training store from a request
// grid by emulating every cell on a bounded worker pool — typically the
// grid of a completed sweep, so interactive traffic starts against a
// warm store. Cells the surrogate already answers confidently are
// served from it (and not re-observed); everything else emulates and
// feeds back. See SeedSurrogateCtx for cancellation.
func (p *Profile) SeedSurrogate(reqs []Request, workers int) error {
	return p.SeedSurrogateCtx(context.Background(), reqs, workers)
}

// SeedSurrogateCtx is SeedSurrogate with cancellation: once ctx fires no
// new cell starts. The first cell error (or the cancellation) is
// returned; cells already seeded stay in the store.
func (p *Profile) SeedSurrogateCtx(ctx context.Context, reqs []Request, workers int) error {
	if p.opts.Surrogate == nil {
		return errors.New("prophet: SeedSurrogate needs Options.Surrogate armed")
	}
	outs := sweep.RunCtx(ctx, sweep.Engine{Workers: workers, Metrics: p.opts.Observer.Metrics},
		len(reqs), func(ctx context.Context, i int) (Estimate, error) {
			return p.EstimateCtx(ctx, reqs[i])
		})
	for _, o := range outs {
		if o.Err != nil {
			return o.Err
		}
	}
	return nil
}
