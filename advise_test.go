package prophet

import (
	"context"
	"encoding/json"
	"errors"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"prophet/internal/memmodel"
	"prophet/internal/tree"
)

func TestAdviseBalancedLoop(t *testing.T) {
	p, err := ProfileProgram(balancedProgram(48, 100_000), &Options{Machine: testMachine(12)})
	if err != nil {
		t.Fatal(err)
	}
	adv := p.Advise(&AdviseOptions{Method: FastForward})
	if adv.Best.Speedup < 10 {
		t.Fatalf("best speedup = %.2f, want ~12 on a balanced loop", adv.Best.Speedup)
	}
	if adv.Best.Threads != 12 {
		t.Fatalf("best threads = %d, want 12", adv.Best.Threads)
	}
	if adv.MemoryLimited {
		t.Error("compute-only loop flagged memory-limited")
	}
	if adv.ParallelFraction < 0.999 {
		t.Errorf("parallel fraction = %g, want ~1", adv.ParallelFraction)
	}
	if adv.UpperBound < adv.Best.Speedup-0.2 {
		t.Errorf("upper bound %.2f below best %.2f", adv.UpperBound, adv.Best.Speedup)
	}
	// Sweep is sorted descending.
	for i := 1; i < len(adv.Sweep); i++ {
		if adv.Sweep[i].Speedup > adv.Sweep[i-1].Speedup {
			t.Fatal("sweep not sorted")
		}
	}
}

func TestAdviseMemoryBound(t *testing.T) {
	streaming := func(ctx Context) {
		ctx.SecBegin("stream")
		for i := 0; i < 96; i++ {
			ctx.TaskBegin("it")
			ctx.Compute(10_000, 3_000)
			ctx.TaskEnd()
		}
		ctx.SecEnd(false)
	}
	p, err := ProfileProgram(streaming, &Options{Machine: testMachine(12)})
	if err != nil {
		t.Fatal(err)
	}
	adv := p.Advise(&AdviseOptions{Method: FastForward})
	if !adv.MemoryLimited {
		t.Fatal("streaming workload not flagged memory-limited")
	}
	if adv.SaturationThreads == 0 || adv.SaturationThreads > 12 {
		t.Fatalf("saturation threads = %d, want within the sweep", adv.SaturationThreads)
	}
	s := adv.String()
	for _, want := range []string{"best:", "memory-limited", "top configurations"} {
		if !strings.Contains(s, want) {
			t.Errorf("advice report missing %q:\n%s", want, s)
		}
	}
}

func TestAdviseSerialProgram(t *testing.T) {
	// Mostly serial: the advisor must not promise much.
	prog := func(ctx Context) {
		ctx.Compute(900_000, 0)
		ctx.SecBegin("tiny")
		ctx.TaskBegin("t")
		ctx.Compute(50_000, 0)
		ctx.TaskEnd()
		ctx.TaskBegin("t")
		ctx.Compute(50_000, 0)
		ctx.TaskEnd()
		ctx.SecEnd(false)
	}
	p, err := ProfileProgram(prog, &Options{Machine: testMachine(12)})
	if err != nil {
		t.Fatal(err)
	}
	adv := p.Advise(&AdviseOptions{Method: FastForward, Threads: []int{2, 4, 8}})
	if adv.Best.Speedup > 1.15 {
		t.Fatalf("serial program promised %.2fx", adv.Best.Speedup)
	}
	if adv.ParallelFraction > 0.15 {
		t.Fatalf("parallel fraction = %g", adv.ParallelFraction)
	}
	if adv.SaturationThreads == 0 {
		t.Error("no saturation point on an Amdahl-bound program")
	}
}

func TestAdviseCilkWinsOnRecursion(t *testing.T) {
	// Deep recursion: the Cilk paradigm should beat nested OpenMP teams.
	var rec func(ctx Context, depth int)
	rec = func(ctx Context, depth int) {
		if depth == 0 {
			ctx.Compute(40_000, 0)
			return
		}
		ctx.SecBegin("split")
		ctx.TaskBegin("l")
		rec(ctx, depth-1)
		ctx.TaskEnd()
		ctx.TaskBegin("r")
		rec(ctx, depth-1)
		ctx.TaskEnd()
		ctx.SecEnd(false)
	}
	prog := func(ctx Context) {
		ctx.SecBegin("root")
		ctx.TaskBegin("t")
		rec(ctx, 5)
		ctx.TaskEnd()
		ctx.SecEnd(false)
	}
	p, err := ProfileProgram(prog, &Options{Machine: testMachine(8), CompressTolerance: -1})
	if err != nil {
		t.Fatal(err)
	}
	adv := p.Advise(&AdviseOptions{Threads: []int{4, 8}, Method: Synthesizer})
	if adv.Best.Paradigm != Cilk {
		t.Fatalf("best paradigm = %v, want Cilk for recursion (%.2fx)\n%s",
			adv.Best.Paradigm, adv.Best.Speedup, adv)
	}
}

// TestAdviseUnsortedThreads is the regression for the advise.go:99 bug:
// an unsorted -cores input used to compute UpperBound at the last (not
// largest) entry and corrupt the saturation walk. Threads are now
// normalized like ParseCores, so any ordering yields the same Advice.
func TestAdviseUnsortedThreads(t *testing.T) {
	p, err := ProfileProgram(balancedProgram(48, 100_000), &Options{Machine: testMachine(12)})
	if err != nil {
		t.Fatal(err)
	}
	sorted := p.Advise(&AdviseOptions{Method: FastForward, Threads: []int{1, 4, 12}})
	unsorted := p.Advise(&AdviseOptions{Method: FastForward, Threads: []int{12, 1, 4, 4}})
	if unsorted.TargetThreads != 12 {
		t.Fatalf("target threads = %d, want 12 (largest, not last)", unsorted.TargetThreads)
	}
	if unsorted.UpperBound != sorted.UpperBound {
		t.Fatalf("upper bound %v != %v: computed at the wrong thread count", unsorted.UpperBound, sorted.UpperBound)
	}
	a, err := json.Marshal(sorted)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(unsorted)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatalf("unsorted -cores changed the advice:\nsorted:   %s\nunsorted: %s", a, b)
	}
}

// TestAdviseAllErrors is the regression for the zero-value report: when
// every estimate fails (here: a 1-event watchdog budget), Best must stay
// unranked, the first error must surface on Advice, and the report must
// say so instead of "best: 0.00x with ff on 0 threads".
func TestAdviseAllErrors(t *testing.T) {
	machine := testMachine(12)
	machine.MaxEvents = 1
	p, err := ProfileProgram(balancedProgram(8, 50_000), &Options{
		Machine:            machine,
		DisableMemoryModel: true, // calibration would hit the budget too
	})
	if err != nil {
		t.Fatal(err)
	}
	adv, aerr := p.AdviseCtx(context.Background(), &AdviseOptions{Method: Synthesizer, Threads: []int{2, 4}})
	if aerr == nil {
		t.Fatal("AdviseCtx returned nil error with every estimate failing")
	}
	if !errors.Is(aerr, ErrBudgetExceeded) {
		t.Fatalf("error = %v, want ErrBudgetExceeded", aerr)
	}
	if adv.Err == nil {
		t.Error("Advice.Err not surfaced")
	}
	if adv.Best.Speedup != 0 || adv.Best.Threads != 0 {
		t.Fatalf("Best ranked from errored estimates: %+v", adv.Best)
	}
	for _, e := range adv.Sweep {
		if e.Err == nil {
			t.Fatalf("sweep entry without error in an all-errors sweep: %+v", e)
		}
	}
	s := adv.String()
	if !strings.Contains(s, "no configuration could be estimated") {
		t.Errorf("report missing the failure message:\n%s", s)
	}
	if strings.Contains(s, "0.00x with") {
		t.Errorf("report still renders the zero-value best:\n%s", s)
	}
}

// TestAdviseCtxCancel cancels the advisor mid-fanout and asserts partial
// results come back with the cancellation error — and that no worker
// goroutines leak past the return.
func TestAdviseCtxCancel(t *testing.T) {
	p, err := ProfileProgram(balancedProgram(24, 50_000), &Options{Machine: testMachine(12)})
	if err != nil {
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var calls atomic.Int64
	adv, aerr := p.AdviseCtx(ctx, &AdviseOptions{
		Method:  FastForward,
		Threads: []int{2, 4, 6, 8, 10, 12},
		Workers: 1, // deterministic: cells run one at a time
		Estimator: func(ctx context.Context, scope string, prof *Profile, req Request) (Estimate, error) {
			if calls.Add(1) == 3 {
				cancel()
			}
			return prof.EstimateCtx(ctx, req)
		},
	})
	if !errors.Is(aerr, context.Canceled) {
		t.Fatalf("error = %v, want context.Canceled", aerr)
	}
	if len(adv.Sweep) == 0 {
		t.Fatal("no partial results survived the cancellation")
	}
	// 2 paradigms × (3 scheds + steal) × 6 threads = 24 grid cells; the
	// cancel landed at cell 3, so most of the grid must be missing.
	if len(adv.Sweep) >= 24 {
		t.Fatalf("sweep has %d entries, want a partial result", len(adv.Sweep))
	}
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > before {
		t.Errorf("goroutines leaked: %d before, %d after", before, g)
	}
}

// TestAdviseRegionCandidates pins the region enumeration: deterministic
// first-occurrence order, same-named sections grouped, zero-length
// serial runs skipped, Repeat runs counted at full weight.
func TestAdviseRegionCandidates(t *testing.T) {
	root := tree.NewRoot(
		tree.NewSec("a", tree.NewTask("t", tree.NewU(300))),
		tree.NewU(100),
		tree.NewSec("a", tree.NewTask("t", tree.NewU(500))),
		tree.NewU(0),
		tree.NewSec("b", tree.NewTask("t", tree.NewU(200))),
		&tree.Node{Kind: tree.U, Len: 50, Repeat: 2},
	)
	cands := adviseCandidates(root)
	want := []struct {
		name string
		kind string
		work Cycles
		idxs []int
	}{
		{"a", RegionSection, 800, []int{0, 2}},
		{"serial#1", RegionSerial, 100, []int{1}},
		{"b", RegionSection, 200, []int{4}},
		{"serial#2", RegionSerial, 100, []int{5}},
	}
	if len(cands) != len(want) {
		t.Fatalf("got %d candidates, want %d: %+v", len(cands), len(want), cands)
	}
	for i, w := range want {
		c := cands[i]
		if c.name != w.name || c.kind != w.kind || c.work != w.work {
			t.Errorf("candidate %d = {%s %s %d}, want {%s %s %d}", i, c.name, c.kind, c.work, w.name, w.kind, w.work)
		}
		if len(c.idxs) != len(w.idxs) {
			t.Errorf("candidate %d indices = %v, want %v", i, c.idxs, w.idxs)
			continue
		}
		for j := range w.idxs {
			if c.idxs[j] != w.idxs[j] {
				t.Errorf("candidate %d indices = %v, want %v", i, c.idxs, w.idxs)
			}
		}
	}
}

// TestAdviseRegionVariants pins variant synthesis: total work conserved
// exactly on the clone, the baseline tree untouched, sections serialized
// to one U, Repeat runs wrapped one-task-per-repetition, and single long
// runs split into near-equal tasks.
func TestAdviseRegionVariants(t *testing.T) {
	root := tree.NewRoot(
		tree.NewSec("hot",
			tree.NewTask("t", tree.NewU(400)),
			tree.NewTask("t", tree.NewU(600))),
		&tree.Node{Kind: tree.U, Len: 100, Repeat: 7, Mem: tree.MemTraits{Instructions: 40, LLCMisses: 2}},
		tree.NewU(10),
	)
	p, err := ProfileTree(root, &Options{Machine: testMachine(12), DisableMemoryModel: true})
	if err != nil {
		t.Fatal(err)
	}
	baseline := p.Tree.String()
	total := p.Tree.TotalLen()
	cands := adviseCandidates(p.Tree)
	if len(cands) != 3 {
		t.Fatalf("got %d candidates: %+v", len(cands), cands)
	}

	for _, c := range cands {
		v, err := p.regionVariant(c, 4)
		if err != nil {
			t.Fatalf("variant %s: %v", c.name, err)
		}
		if got := v.Tree.TotalLen(); got != total {
			t.Errorf("variant %s total work %d, want %d", c.name, got, total)
		}
		if v.SerialCycles != p.SerialCycles {
			t.Errorf("variant %s serial cycles %d, want %d", c.name, v.SerialCycles, p.SerialCycles)
		}
		if err := v.Tree.Validate(); err != nil {
			t.Errorf("variant %s invalid: %v", c.name, err)
		}
	}
	if got := p.Tree.String(); got != baseline {
		t.Fatalf("baseline tree mutated by variant synthesis:\nbefore:\n%s\nafter:\n%s", baseline, got)
	}

	// Section candidate: serialized to a single top-level U of its work.
	v, _ := p.regionVariant(cands[0], 4)
	if n := v.Tree.Children[0]; n.Kind != tree.U || n.Len != 1000 {
		t.Errorf("serialized section = %v len %d, want U len 1000", n.Kind, n.Len)
	}

	// Repeat run: one task per repetition, memory traits carried over.
	v, _ = p.regionVariant(cands[1], 4)
	sec := v.Tree.Children[1]
	if sec.Kind != tree.Sec || sec.Name != "serial#1" {
		t.Fatalf("wrapped run = %v %q, want Sec serial#1", sec.Kind, sec.Name)
	}
	if sec.Tasks() != 7 {
		t.Errorf("wrapped Repeat run has %d tasks, want 7", sec.Tasks())
	}
	if sec.Counters == nil || sec.Counters.Instructions != 40 || sec.Counters.LLCMisses != 2 || sec.Counters.Cycles != 100 {
		t.Errorf("synthesized counters = %+v, want per-rep {40, 100, 2}", sec.Counters)
	}

	// Single run of 10 cycles at 4 target threads: 2 tasks of 3 plus 2
	// of 2 — exact conservation, no Mem so no counters.
	v, _ = p.regionVariant(cands[2], 4)
	sec = v.Tree.Children[2]
	if sec.Kind != tree.Sec || sec.Tasks() != 4 || sec.TotalLen() != 10 {
		t.Fatalf("split run = %v tasks=%d total=%d, want Sec tasks=4 total=10", sec.Kind, sec.Tasks(), sec.TotalLen())
	}
	if sec.Counters != nil {
		t.Errorf("split run without Mem got counters %+v", sec.Counters)
	}
}

// TestAdviseAntiRecommendation is the acceptance case: a memory-bound
// region whose parallel variant predicts < 1.0x marginal gain must come
// back as an explicit anti-recommendation, while the compute-bound
// region tops the ranking.
func TestAdviseAntiRecommendation(t *testing.T) {
	hot := tree.NewSec("hot")
	for i := 0; i < 12; i++ {
		hot.Children = append(hot.Children, tree.NewTask("t", tree.NewU(100_000)))
	}
	membound := tree.NewSec("membound",
		tree.NewTask("t", tree.NewU(200_000)),
		tree.NewTask("t", tree.NewU(200_000)))
	// A saturated-bandwidth burden at every swept count: parallelizing
	// this section quadruples its per-task cost. Counters stay nil so
	// recalibration (which skips counter-less sections) preserves it.
	membound.Burden = map[int]float64{2: 4, 4: 4, 6: 4, 8: 4, 10: 4, 12: 4}
	root := tree.NewRoot(hot, membound)

	// An empty model keeps burden lookups live (Model != nil) without
	// calibrating: sections without counters keep their hand-set maps.
	p, err := ProfileTree(root, &Options{Machine: testMachine(12), MemModel: &memmodel.Model{}})
	if err != nil {
		t.Fatal(err)
	}
	adv, aerr := p.AdviseCtx(context.Background(), &AdviseOptions{Method: FastForward, Threads: []int{4, 12}})
	if aerr != nil {
		t.Fatal(aerr)
	}
	if len(adv.Regions) != 2 {
		t.Fatalf("got %d regions, want 2:\n%s", len(adv.Regions), adv)
	}
	top := adv.Regions[0]
	if top.Region != "hot" || !top.Recommend || top.Marginal <= 1 {
		t.Fatalf("top region = %+v, want hot recommended with marginal > 1\n%s", top, adv)
	}
	var mb *RegionAdvice
	for i := range adv.Regions {
		if adv.Regions[i].Region == "membound" {
			mb = &adv.Regions[i]
		}
	}
	if mb == nil {
		t.Fatalf("membound region missing:\n%s", adv)
	}
	if mb.Err != nil {
		t.Fatalf("membound experiment failed: %v", mb.Err)
	}
	if mb.Marginal >= 1 || mb.Recommend {
		t.Fatalf("memory-bound region not anti-recommended: marginal %.2f recommend %v\n%s", mb.Marginal, mb.Recommend, adv)
	}
	if mb.Kind != RegionSection {
		t.Errorf("membound kind = %s, want %s", mb.Kind, RegionSection)
	}
	if !strings.Contains(adv.String(), "not worth it") {
		t.Errorf("report missing the anti-recommendation:\n%s", adv)
	}
}

// TestAdviceJSONRoundTrip pins the advice wire format: Err flattens to a
// message on both Advice and RegionAdvice and survives a round trip.
func TestAdviceJSONRoundTrip(t *testing.T) {
	in := Advice{
		Best:             Estimate{Request: Request{Method: FastForward, Threads: 8}, Speedup: 3.5},
		ParallelFraction: 0.9,
		UpperBound:       8,
		TargetThreads:    8,
		Regions: []RegionAdvice{
			{Region: "loop", Kind: RegionSection, Work: 1000, Coverage: 0.8, WithSpeedup: 3.5, WithoutSpeedup: 1.1, Marginal: 3.18, Recommend: true},
			{Region: "serial#1", Kind: RegionSerial, Err: errors.New("boom")},
		},
		Err: errors.New("one cell failed"),
	}
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out Advice
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out.Err == nil || out.Err.Error() != "one cell failed" {
		t.Errorf("Advice.Err round trip = %v", out.Err)
	}
	if len(out.Regions) != 2 || out.Regions[1].Err == nil || out.Regions[1].Err.Error() != "boom" {
		t.Errorf("RegionAdvice.Err round trip = %+v", out.Regions)
	}
	if out.Regions[0] != in.Regions[0] {
		t.Errorf("region round trip = %+v, want %+v", out.Regions[0], in.Regions[0])
	}
	if out.TargetThreads != 8 || !out.Regions[0].Recommend {
		t.Errorf("fields lost in round trip: %+v", out)
	}
}
