package prophet

import (
	"strings"
	"testing"
)

func TestAdviseBalancedLoop(t *testing.T) {
	p, err := ProfileProgram(balancedProgram(48, 100_000), &Options{Machine: testMachine(12)})
	if err != nil {
		t.Fatal(err)
	}
	adv := p.Advise(&AdviseOptions{Method: FastForward})
	if adv.Best.Speedup < 10 {
		t.Fatalf("best speedup = %.2f, want ~12 on a balanced loop", adv.Best.Speedup)
	}
	if adv.Best.Threads != 12 {
		t.Fatalf("best threads = %d, want 12", adv.Best.Threads)
	}
	if adv.MemoryLimited {
		t.Error("compute-only loop flagged memory-limited")
	}
	if adv.ParallelFraction < 0.999 {
		t.Errorf("parallel fraction = %g, want ~1", adv.ParallelFraction)
	}
	if adv.UpperBound < adv.Best.Speedup-0.2 {
		t.Errorf("upper bound %.2f below best %.2f", adv.UpperBound, adv.Best.Speedup)
	}
	// Sweep is sorted descending.
	for i := 1; i < len(adv.Sweep); i++ {
		if adv.Sweep[i].Speedup > adv.Sweep[i-1].Speedup {
			t.Fatal("sweep not sorted")
		}
	}
}

func TestAdviseMemoryBound(t *testing.T) {
	streaming := func(ctx Context) {
		ctx.SecBegin("stream")
		for i := 0; i < 96; i++ {
			ctx.TaskBegin("it")
			ctx.Compute(10_000, 3_000)
			ctx.TaskEnd()
		}
		ctx.SecEnd(false)
	}
	p, err := ProfileProgram(streaming, &Options{Machine: testMachine(12)})
	if err != nil {
		t.Fatal(err)
	}
	adv := p.Advise(&AdviseOptions{Method: FastForward})
	if !adv.MemoryLimited {
		t.Fatal("streaming workload not flagged memory-limited")
	}
	if adv.SaturationThreads == 0 || adv.SaturationThreads > 12 {
		t.Fatalf("saturation threads = %d, want within the sweep", adv.SaturationThreads)
	}
	s := adv.String()
	for _, want := range []string{"best:", "memory-limited", "top configurations"} {
		if !strings.Contains(s, want) {
			t.Errorf("advice report missing %q:\n%s", want, s)
		}
	}
}

func TestAdviseSerialProgram(t *testing.T) {
	// Mostly serial: the advisor must not promise much.
	prog := func(ctx Context) {
		ctx.Compute(900_000, 0)
		ctx.SecBegin("tiny")
		ctx.TaskBegin("t")
		ctx.Compute(50_000, 0)
		ctx.TaskEnd()
		ctx.TaskBegin("t")
		ctx.Compute(50_000, 0)
		ctx.TaskEnd()
		ctx.SecEnd(false)
	}
	p, err := ProfileProgram(prog, &Options{Machine: testMachine(12)})
	if err != nil {
		t.Fatal(err)
	}
	adv := p.Advise(&AdviseOptions{Method: FastForward, Threads: []int{2, 4, 8}})
	if adv.Best.Speedup > 1.15 {
		t.Fatalf("serial program promised %.2fx", adv.Best.Speedup)
	}
	if adv.ParallelFraction > 0.15 {
		t.Fatalf("parallel fraction = %g", adv.ParallelFraction)
	}
	if adv.SaturationThreads == 0 {
		t.Error("no saturation point on an Amdahl-bound program")
	}
}

func TestAdviseCilkWinsOnRecursion(t *testing.T) {
	// Deep recursion: the Cilk paradigm should beat nested OpenMP teams.
	var rec func(ctx Context, depth int)
	rec = func(ctx Context, depth int) {
		if depth == 0 {
			ctx.Compute(40_000, 0)
			return
		}
		ctx.SecBegin("split")
		ctx.TaskBegin("l")
		rec(ctx, depth-1)
		ctx.TaskEnd()
		ctx.TaskBegin("r")
		rec(ctx, depth-1)
		ctx.TaskEnd()
		ctx.SecEnd(false)
	}
	prog := func(ctx Context) {
		ctx.SecBegin("root")
		ctx.TaskBegin("t")
		rec(ctx, 5)
		ctx.TaskEnd()
		ctx.SecEnd(false)
	}
	p, err := ProfileProgram(prog, &Options{Machine: testMachine(8), CompressTolerance: -1})
	if err != nil {
		t.Fatal(err)
	}
	adv := p.Advise(&AdviseOptions{Threads: []int{4, 8}, Method: Synthesizer})
	if adv.Best.Paradigm != Cilk {
		t.Fatalf("best paradigm = %v, want Cilk for recursion (%.2fx)\n%s",
			adv.Best.Paradigm, adv.Best.Speedup, adv)
	}
}
