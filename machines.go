package prophet

import (
	"fmt"
	"strings"

	"prophet/internal/machine"
)

// This file is the public surface of machine targets: the immutable
// MachineSpec API re-exported from internal/machine, and the text
// vocabulary the CLIs and the daemon use to spell machine names
// (ParseMachineSpec / ParseMachines, the -machines flag grammar).

// MachineSpec is an immutable, validated description of a simulated
// machine: core groups with per-group clock ratios (asymmetric
// big.LITTLE-style machines), the scheduling quantum and context-switch
// cost, the last-level cache, and the DRAM bandwidth model with an
// optional second bandwidth domain. Construct one literally and
// Validate it, or look up a named preset with ParseMachineSpec. A spec
// is never mutated after validation; pass it via MachineConfig.Spec.
type MachineSpec = machine.Spec

// CoreGroup is a run of identical cores inside a MachineSpec.
type CoreGroup = machine.CoreGroup

// LLCSpec describes a MachineSpec's last-level cache.
type LLCSpec = machine.LLCSpec

// DRAMSpec describes a MachineSpec's memory system.
type DRAMSpec = machine.DRAMSpec

// DRAMDomain is the optional second bandwidth domain of a DRAMSpec.
type DRAMDomain = machine.DRAMDomain

// DefaultMachineName names the preset every empty machine field means:
// the paper's 12-core Westmere-class testbed.
const DefaultMachineName = machine.DefaultName

// DefaultMachineSpec returns the default preset (see DefaultMachineName).
func DefaultMachineSpec() *MachineSpec { return machine.Default() }

// ParseMachineSpec resolves a machine preset name to its spec. The
// result is the registry's canonical pointer: specs are immutable and
// equal names always return the same *MachineSpec, so specs can be
// compared by pointer and used as cache keys. Unknown names return an
// error wrapping ErrUnknownMachine.
func ParseMachineSpec(name string) (*MachineSpec, error) {
	return machine.ParseSpec(name)
}

// RegisterMachineSpec adds a custom machine preset to the registry,
// making its name resolvable everywhere a machine name is accepted
// (Request.Machine, -machines, the daemon's machine field). The spec
// must validate and the name must be unused; the registry keeps the
// given pointer as the name's canonical spec, so the caller must not
// mutate it afterwards.
func RegisterMachineSpec(s *MachineSpec) error { return machine.Register(s) }

// MachineNames lists the registered machine preset names, default first,
// the rest sorted.
func MachineNames() []string { return machine.Names() }

// MachinePresets returns the registered specs in MachineNames order.
func MachinePresets() []*MachineSpec { return machine.Presets() }

// ParseMachines parses a comma-separated list of machine preset names —
// the -machines flag grammar, e.g. "westmere12,embedded4+4". Whitespace
// around entries is allowed and duplicates collapse to the first
// occurrence, but unlike ParseCores the given order is kept: it is the
// column order of the resulting prediction matrix.
func ParseMachines(s string) ([]*MachineSpec, error) {
	if strings.TrimSpace(s) == "" {
		return nil, fmt.Errorf("prophet: empty machine list")
	}
	seen := make(map[string]bool)
	var out []*MachineSpec
	for _, part := range strings.Split(s, ",") {
		spec, err := machine.ParseSpec(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		if seen[spec.Name] {
			continue
		}
		seen[spec.Name] = true
		out = append(out, spec)
	}
	return out, nil
}
