package prophet

import (
	"testing"
)

// ioProgram is a loop whose tasks spend most of their time blocked on I/O:
// the §VIII extension's target shape (think: fetch, compute, store).
func ioProgram(nTasks int) Program {
	return func(ctx Context) {
		ctx.SecBegin("io-loop")
		for i := 0; i < nTasks; i++ {
			ctx.TaskBegin("t")
			ctx.Compute(20_000, 0) // compute
			ctx.IOWait(80_000)     // blocked on I/O, no CPU
			ctx.Compute(20_000, 0)
			ctx.TaskEnd()
		}
		ctx.SecEnd(false)
	}
}

func TestIOWaitProfilesAsWNode(t *testing.T) {
	p, err := ProfileProgram(ioProgram(4), &Options{
		Machine: testMachine(2), DisableMemoryModel: true, CompressTolerance: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Serial time includes the waits: 4 * 120k.
	if p.SerialCycles != 480_000 {
		t.Fatalf("serial = %d, want 480000", p.SerialCycles)
	}
	task := p.Tree.TopLevelSections()[0].Children[0]
	if len(task.Children) != 3 {
		t.Fatalf("task children = %d, want U W U", len(task.Children))
	}
	w := task.Children[1]
	if w.Kind.String() != "W" || w.Len != 80_000 {
		t.Fatalf("middle child = %v %d, want W 80000", w.Kind, w.Len)
	}
}

// TestIOWaitOverlapsOnMachine: with 8 I/O-heavy tasks on 2 cores, the
// machine overlaps waits with other tasks' compute — the real speedup
// exceeds the core count; the synthesizer captures this, the FF
// (conservatively) does not.
func TestIOWaitOverlapsOnMachine(t *testing.T) {
	p, err := ProfileProgram(ioProgram(8), &Options{
		Machine: testMachine(2), DisableMemoryModel: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	req := Request{Threads: 8, Sched: Static1} // oversubscribe: 8 threads, 2 cores
	real := p.RealSpeedup(req)
	// Compute is 8*40k = 320k on 2 cores => >= 160k; waits overlap, so
	// the bound is ~960k/160k+waits = up to 5.1 with perfect overlap.
	if real <= 2.2 {
		t.Fatalf("real speedup = %.2f; I/O waits did not overlap (core count is 2)", real)
	}
	syn := p.Estimate(Request{Method: Synthesizer, Threads: 8, Sched: Static1}).Speedup
	if syn <= 2.2 {
		t.Fatalf("synthesizer speedup = %.2f; W nodes not overlapped", syn)
	}
	ffPred := p.Estimate(Request{Method: FastForward, Threads: 8, Sched: Static1}).Speedup
	// The FF treats waits as compute on abstract workers with no core
	// limit, so under oversubscription it misses the machine effects in
	// one direction or the other; it must at least stay sane.
	if ffPred <= 0 {
		t.Fatalf("ff speedup = %.2f", ffPred)
	}
	// Synthesizer must be the closer predictor of the two (the W story
	// is another Fig. 7-style case where the machine-backed emulator
	// wins).
	if dFF, dSyn := absf(ffPred-real), absf(syn-real); dSyn > dFF {
		t.Fatalf("synthesizer (%.2f) further from real (%.2f) than FF (%.2f)", syn, real, ffPred)
	}
}

// TestIOWaitPipelineStage: a W stage in a pipeline releases its worker.
func TestIOWaitPipelineStage(t *testing.T) {
	prog := func(ctx Context) {
		ctx.PipeBegin("pipe")
		for i := 0; i < 16; i++ {
			ctx.TaskBegin("t")
			ctx.Compute(10_000, 0)
			ctx.StageBreak()
			ctx.IOWait(10_000)
			ctx.StageBreak()
			ctx.Compute(10_000, 0)
			ctx.TaskEnd()
		}
		ctx.PipeEnd()
	}
	p, err := ProfileProgram(prog, &Options{Machine: testMachine(4), DisableMemoryModel: true})
	if err != nil {
		t.Fatal(err)
	}
	real := p.RealSpeedup(Request{Threads: 3, Sched: Static})
	if real < 2.0 {
		t.Fatalf("pipeline with W stage speedup = %.2f", real)
	}
}

func TestIOWaitOutsideTaskFails(t *testing.T) {
	bad := func(ctx Context) { ctx.IOWait(100) }
	if _, err := ProfileProgram(bad, nil); err == nil {
		t.Fatal("IOWait outside a task accepted")
	}
}

func absf(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
