// Benchmarks regenerating every table and figure of the paper (one bench
// per experiment, as indexed in DESIGN.md), plus ablation benches for the
// design choices the reproduction makes. Run with:
//
//	go test -bench=. -benchmem
//
// The benches exercise the same code paths as cmd/ppexp with reduced
// sample counts so a full sweep stays in benchmark-friendly time; use
// cmd/ppexp for the paper-scale runs.
package prophet_test

import (
	"math/rand"
	"testing"

	"prophet"
	"prophet/internal/compress"
	"prophet/internal/experiments"
	"prophet/internal/ff"
	"prophet/internal/machine"
	"prophet/internal/memmodel"
	"prophet/internal/omprt"
	"prophet/internal/realrun"
	"prophet/internal/sim"
	"prophet/internal/synth"
	"prophet/internal/trace"
	"prophet/internal/tree"
	"prophet/internal/workloads"
)

func benchMachine() sim.Config {
	return sim.Config{Cores: 12, Quantum: 10_000, ContextSwitch: -1}
}

// BenchmarkFig4Tree profiles the paper's §IV-A running example into its
// program tree (Fig. 4).
func BenchmarkFig4Tree(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if out := experiments.Fig4(); len(out) == 0 {
			b.Fatal("empty tree")
		}
	}
}

// BenchmarkFig5FF regenerates the Fig. 5 schedule walkthrough.
func BenchmarkFig5FF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if t := experiments.Fig5(); len(t.Rows) != 3 {
			b.Fatal("bad table")
		}
	}
}

// BenchmarkFig7 regenerates the nested-loop limitation comparison
// (FF vs Suitability vs synthesizer vs real).
func BenchmarkFig7(b *testing.B) {
	cfg := experiments.Config{Machine: benchMachine()}
	for i := 0; i < b.N; i++ {
		if t := experiments.Fig7(cfg); len(t.Rows) != 4 {
			b.Fatal("bad table")
		}
	}
}

// BenchmarkFig11Validation runs the Test1/Test2 validation (Fig. 11) at a
// reduced sample count per iteration.
func BenchmarkFig11Validation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Fig11(experiments.Config{
			Machine: benchMachine(), Samples: 2, Seed: int64(i + 1),
		})
		if len(res.Cases) != 6 {
			b.Fatal("bad result")
		}
	}
}

// BenchmarkFig12Benchmarks regenerates two Fig. 12 panels (EP and FT — the
// FT panel is also Fig. 2) at the sweep's endpoints.
func BenchmarkFig12Benchmarks(b *testing.B) {
	cfg := experiments.Config{Machine: benchMachine(), Cores: []int{2, 12}}
	for i := 0; i < b.N; i++ {
		s := experiments.Fig12(cfg, []string{"NPB-EP", "NPB-FT"})
		if len(s) != 2 {
			b.Fatal("bad series")
		}
	}
}

// BenchmarkPsiCalibration runs the Eq. (6)/(7) microbenchmark calibration.
func BenchmarkPsiCalibration(b *testing.B) {
	mc := benchMachine()
	for i := 0; i < b.N; i++ {
		m, _, err := memmodel.Calibrate(mc, []int{2, 4, 8, 12})
		if err != nil || m.Phi.B >= 0 {
			b.Fatalf("calibration bad: %v", err)
		}
	}
}

// BenchmarkTable1 renders the qualitative comparison matrix.
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if t := experiments.Table1(); len(t.Rows) != 4 {
			b.Fatal("bad table")
		}
	}
}

// BenchmarkTable3Overheads measures the FF-vs-synthesizer cost/accuracy
// table on one benchmark.
func BenchmarkTable3Overheads(b *testing.B) {
	cfg := experiments.Config{Machine: benchMachine()}
	for i := 0; i < b.N; i++ {
		if t := experiments.Table3(cfg, []string{"NPB-EP"}); len(t.Rows) != 1 {
			b.Fatal("bad table")
		}
	}
}

// BenchmarkProfilingOverhead measures interval profiling itself (§VII-D):
// one full profile of the MD benchmark per iteration.
func BenchmarkProfilingOverhead(b *testing.B) {
	w, _ := workloads.ByName("MD-OMP")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		root, _, err := trace.Profile(w.Program, benchMachine().DRAM)
		if err != nil || root.TotalLen() == 0 {
			b.Fatal(err)
		}
	}
}

// BenchmarkCompression measures §VI-B compression on a CG-shaped tree
// (many nearly identical iterations).
func BenchmarkCompression(b *testing.B) {
	build := func() *tree.Node {
		rng := rand.New(rand.NewSource(1))
		tasks := make([]*tree.Node, 20_000)
		for i := range tasks {
			l := 1000.0 * (0.98 + 0.04*rng.Float64())
			tasks[i] = tree.NewTask("t", tree.NewU(prophet.Cycles(l)))
		}
		return tree.NewRoot(tree.NewSec("cg", tasks...))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		root := build()
		b.StartTimer()
		st := compress.Compress(root, compress.Options{Tolerance: compress.DefaultTolerance})
		if st.Reduction() < 0.9 {
			b.Fatalf("reduction %f", st.Reduction())
		}
	}
}

// BenchmarkCompressionTolerance is the ablation for the 5% tolerance
// choice: it sweeps tolerances and reports nodes retained per run.
func BenchmarkCompressionTolerance(b *testing.B) {
	for _, tol := range []float64{0, 0.01, 0.05, 0.20} {
		tol := tol
		b.Run(benchName(tol), func(b *testing.B) {
			rng := rand.New(rand.NewSource(2))
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				tasks := make([]*tree.Node, 5_000)
				for j := range tasks {
					l := 1000.0 * (0.9 + 0.2*rng.Float64())
					tasks[j] = tree.NewTask("t", tree.NewU(prophet.Cycles(l)))
				}
				root := tree.NewRoot(tree.NewSec("s", tasks...))
				b.StartTimer()
				st := compress.Compress(root, compress.Options{Tolerance: tol})
				b.ReportMetric(float64(st.NodesAfter), "nodes")
			}
		})
	}
}

func benchName(tol float64) string {
	switch tol {
	case 0:
		return "tol=0"
	case 0.01:
		return "tol=1%"
	case 0.05:
		return "tol=5%"
	default:
		return "tol=20%"
	}
}

// BenchmarkFFEmulator measures one FF estimate on the profiled NPB-CG tree
// (Table III's "time overhead per estimate", FF column).
func BenchmarkFFEmulator(b *testing.B) {
	w, _ := workloads.ByName("NPB-CG")
	prof, err := prophet.ProfileProgram(w.Program, &prophet.Options{Machine: benchMachine()})
	if err != nil {
		b.Fatal(err)
	}
	e := &ff.Emulator{Threads: 8, Sched: omprt.SchedStatic, Ov: omprt.DefaultOverheads()}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if e.Speedup(prof.Tree) <= 0 {
			b.Fatal("bad speedup")
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "estimates/sec")
}

// BenchmarkSynthesizer measures one synthesizer estimate on the same tree
// (Table III, SYN column).
func BenchmarkSynthesizer(b *testing.B) {
	w, _ := workloads.ByName("NPB-CG")
	prof, err := prophet.ProfileProgram(w.Program, &prophet.Options{Machine: benchMachine()})
	if err != nil {
		b.Fatal(err)
	}
	s := &synth.Synthesizer{Threads: 8, Sched: omprt.SchedStatic, Machine: benchMachine(), OmpOv: omprt.DefaultOverheads()}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s.Speedup(prof.Tree) <= 0 {
			b.Fatal("bad speedup")
		}
	}
}

// BenchmarkSimEngine is the ablation for the engine-serialized virtual
// thread design: raw event throughput of the discrete-event machine.
func BenchmarkSimEngine(b *testing.B) {
	b.ReportAllocs()
	var events int64
	for i := 0; i < b.N; i++ {
		_, st := sim.Run(benchMachine(), func(t *sim.Thread) {
			ws := make([]*sim.Thread, 0, 24)
			for k := 0; k < 24; k++ {
				ws = append(ws, t.Spawn(func(w *sim.Thread) {
					for j := 0; j < 50; j++ {
						w.Work(5_000)
					}
				}))
			}
			for _, w := range ws {
				t.Join(w)
			}
		})
		events += st.Events
	}
	b.ReportMetric(float64(events)/float64(b.N), "events/op")
	b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/sec")
}

// BenchmarkSimEngineSpec is the same workload driven through a machine
// spec (the default preset) instead of the flat legacy knobs: the
// spec→machine derivation and the pooled spec-keyed reset must sustain
// the engine's event throughput. CI gates the reported events/sec.
func BenchmarkSimEngineSpec(b *testing.B) {
	b.ReportAllocs()
	cfg := sim.Config{Spec: machine.Default(), ContextSwitch: -1}
	var events int64
	for i := 0; i < b.N; i++ {
		_, st := sim.Run(cfg, func(t *sim.Thread) {
			ws := make([]*sim.Thread, 0, 24)
			for k := 0; k < 24; k++ {
				ws = append(ws, t.Spawn(func(w *sim.Thread) {
					for j := 0; j < 50; j++ {
						w.Work(5_000)
					}
				}))
			}
			for _, w := range ws {
				t.Join(w)
			}
		})
		events += st.Events
	}
	b.ReportMetric(float64(events)/float64(b.N), "events/op")
	b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/sec")
}

// BenchmarkDRAMContention is the ablation for the fluid bandwidth-sharing
// model: the traffic-saturation sweep behind the Ψ curves.
func BenchmarkDRAMContention(b *testing.B) {
	for _, threads := range []int{1, 4, 8, 12} {
		threads := threads
		b.Run(map[int]string{1: "t=1", 4: "t=4", 8: "t=8", 12: "t=12"}[threads], func(b *testing.B) {
			mc := benchMachine()
			for i := 0; i < b.N; i++ {
				end, _ := sim.Run(mc, func(t *sim.Thread) {
					ws := make([]*sim.Thread, 0, threads-1)
					body := func(w *sim.Thread) { w.WorkMem(0, 10_000) }
					for k := 1; k < threads; k++ {
						ws = append(ws, t.Spawn(body))
					}
					body(t)
					for _, w := range ws {
						t.Join(w)
					}
				})
				if end <= 0 {
					b.Fatal("no time")
				}
			}
		})
	}
}

// BenchmarkRealGroundTruth measures one ground-truth machine run of NPB-EP
// at 12 threads (the cost basis for the evaluation harness).
func BenchmarkRealGroundTruth(b *testing.B) {
	w, _ := workloads.ByName("NPB-EP")
	prof, err := prophet.ProfileProgram(w.Program, &prophet.Options{Machine: benchMachine()})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := prof.RealSpeedup(prophet.Request{Threads: 12, Sched: w.Sched})
		if s < 1 {
			b.Fatal("bad speedup")
		}
	}
}

// BenchmarkQuantumSensitivity is the ablation for the OS time-slice
// choice: the Fig. 7 ground truth as a function of the scheduling quantum.
// Coarser quanta approach the FF's non-preemptive 1.5x; finer quanta
// approach the ideal 2.0x.
func BenchmarkQuantumSensitivity(b *testing.B) {
	scale := prophet.Cycles(20_000)
	la := tree.NewSec("LoopA",
		tree.NewTask("a0", tree.NewU(10*scale)),
		tree.NewTask("a1", tree.NewU(5*scale)))
	lb := tree.NewSec("LoopB",
		tree.NewTask("b0", tree.NewU(5*scale)),
		tree.NewTask("b1", tree.NewU(10*scale)))
	root := tree.NewRoot(tree.NewSec("Loop1",
		tree.NewTask("t0", la), tree.NewTask("t1", lb)))
	for _, q := range []prophet.Cycles{5_000, 50_000, 200_000} {
		q := q
		name := map[prophet.Cycles]string{5_000: "q=5k", 50_000: "q=50k", 200_000: "q=200k"}[q]
		b.Run(name, func(b *testing.B) {
			mc := sim.Config{Cores: 2, Quantum: q, ContextSwitch: -1}
			for i := 0; i < b.N; i++ {
				s := realrun.Speedup(root, realrun.Config{Machine: mc, Threads: 2, Sched: omprt.SchedStatic1})
				b.ReportMetric(s, "speedup")
			}
		})
	}
}

// BenchmarkCompressionDictionary is the ablation separating the RLE and
// dictionary contributions to §VI-B's reductions.
func BenchmarkCompressionDictionary(b *testing.B) {
	build := func() *tree.Node {
		tasks := make([]*tree.Node, 10_000)
		for i := range tasks {
			l := prophet.Cycles(100)
			if i%2 == 1 {
				l = 200 // alternating: RLE can't merge, dictionary can share
			}
			tasks[i] = tree.NewTask("t", tree.NewU(l))
		}
		return tree.NewRoot(tree.NewSec("s", tasks...))
	}
	for _, dict := range []bool{true, false} {
		dict := dict
		name := "dict=on"
		if !dict {
			name = "dict=off"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				root := build()
				b.StartTimer()
				st := compress.Compress(root, compress.Options{Tolerance: 0, DisableDictionary: !dict})
				b.ReportMetric(float64(st.NodesAfter), "nodes")
			}
		})
	}
}

// BenchmarkPipelineSchedules regenerates the §VIII pipeline extension
// numbers: FF prediction vs machine execution for a bottlenecked pipeline.
func BenchmarkPipelineSchedules(b *testing.B) {
	tasks := make([]*tree.Node, 64)
	for i := range tasks {
		tasks[i] = tree.NewTask("it",
			tree.NewU(20_000), tree.NewU(90_000), tree.NewU(30_000))
	}
	sec := tree.NewSec("pipe", tasks...)
	sec.Pipeline = true
	root := tree.NewRoot(sec)
	b.Run("ff", func(b *testing.B) {
		e := &ff.Emulator{Threads: 3, Sched: omprt.SchedStatic}
		for i := 0; i < b.N; i++ {
			b.ReportMetric(e.Speedup(root), "speedup")
		}
	})
	b.Run("machine", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s := realrun.Speedup(root, realrun.Config{Machine: benchMachine(), Threads: 3})
			b.ReportMetric(s, "speedup")
		}
	})
}
