package prophet

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"prophet/internal/tree"
)

// The error-taxonomy contract of the public API: every failure mode
// surfaces as a typed error dispatchable with errors.Is/errors.As against
// this package's sentinels, and no input — not even a panicking user
// program — crashes the caller.

// TestPanicInProgramBodyIsContained: a panic inside the user's annotated
// program is recovered at the API boundary and returned as *PanicError
// with the original value and a stack.
func TestPanicInProgramBodyIsContained(t *testing.T) {
	_, err := ProfileProgram(func(Context) { panic("user bug") },
		&Options{DisableMemoryModel: true})
	if err == nil {
		t.Fatal("ProfileProgram returned nil error for a panicking program")
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %T %v, want *PanicError", err, err)
	}
	if pe.Value != "user bug" {
		t.Errorf("PanicError.Value = %v, want the original panic value", pe.Value)
	}
	if len(pe.Stack) == 0 {
		t.Error("PanicError.Stack is empty")
	}
	if !strings.Contains(err.Error(), "user bug") {
		t.Errorf("Error() = %q, want it to mention the panic value", err)
	}
}

// TestAnnotationMismatchIsTyped: a structurally broken annotation stream
// fails with ErrAnnotationMismatch, reachable from the root package
// without importing internals.
func TestAnnotationMismatchIsTyped(t *testing.T) {
	_, err := ProfileProgram(func(ctx Context) {
		ctx.SecBegin("left open")
		ctx.Compute(1_000, 0)
	}, &Options{DisableMemoryModel: true})
	if !errors.Is(err, ErrAnnotationMismatch) {
		t.Fatalf("err = %v, want errors.Is ErrAnnotationMismatch", err)
	}
}

// TestMalformedTreeIsTyped: loading a structurally invalid tree (a task
// directly under the root) fails with ErrMalformedTree.
func TestMalformedTreeIsTyped(t *testing.T) {
	bad := &Tree{Kind: tree.Root, Children: []*Tree{{Kind: tree.Task}}}
	_, err := ProfileTree(bad, &Options{DisableMemoryModel: true})
	if !errors.Is(err, ErrMalformedTree) {
		t.Fatalf("err = %v, want errors.Is ErrMalformedTree", err)
	}
}

// TestEstimateBudgetExceededIsTyped: a machine watchdog budget trips
// inside an emulated run and surfaces through EstimateCtx as
// ErrBudgetExceeded — and through the never-panicking Estimate as the
// same error in the Err field.
func TestEstimateBudgetExceededIsTyped(t *testing.T) {
	prog := func(ctx Context) {
		ctx.SecBegin("s")
		for i := 0; i < 8; i++ {
			ctx.TaskBegin("t")
			ctx.Compute(100_000, 0)
			ctx.TaskEnd()
		}
		ctx.SecEnd(false)
	}
	machine := DefaultMachine()
	machine.MaxEvents = 5 // far below what the synthesizer run needs
	prof, err := ProfileProgram(prog, &Options{Machine: machine, DisableMemoryModel: true})
	if err != nil {
		t.Fatalf("profile: %v", err)
	}
	req := Request{Method: Synthesizer, Threads: 4}
	_, err = prof.EstimateCtx(context.Background(), req)
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("EstimateCtx err = %v, want errors.Is ErrBudgetExceeded", err)
	}
	var be *BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("err = %T, want errors.As *BudgetError", err)
	}

	est := prof.Estimate(req) // legacy entry: must not panic
	if !errors.Is(est.Err, ErrBudgetExceeded) {
		t.Fatalf("Estimate().Err = %v, want ErrBudgetExceeded", est.Err)
	}
}

// TestEstimateCtxHonorsCancellation: a canceled context stops both
// profiling and prediction with ErrCanceled.
func TestEstimateCtxHonorsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ProfileProgramCtx(ctx, func(Context) {}, nil); !errors.Is(err, ErrCanceled) {
		t.Fatalf("ProfileProgramCtx err = %v, want ErrCanceled", err)
	}

	prof, err := ProfileProgram(func(ctx Context) {
		ctx.SecBegin("s")
		ctx.TaskBegin("t")
		ctx.Compute(1_000, 0)
		ctx.TaskEnd()
		ctx.SecEnd(false)
	}, &Options{DisableMemoryModel: true})
	if err != nil {
		t.Fatalf("profile: %v", err)
	}
	_, err = prof.EstimateCtx(ctx, Request{Method: Synthesizer, Threads: 2})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("EstimateCtx err = %v, want ErrCanceled", err)
	}
	if _, err := prof.RealSpeedupCtx(ctx, Request{Threads: 2}); !errors.Is(err, ErrCanceled) {
		t.Fatalf("RealSpeedupCtx err = %v, want ErrCanceled", err)
	}
}

// TestEstimateCtxDeadline: an expired deadline surfaces as
// context.DeadlineExceeded, distinct from ErrCanceled, so callers (and
// the CLIs' exit codes) can tell the two apart.
func TestEstimateCtxDeadline(t *testing.T) {
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	_, err := ProfileProgramCtx(ctx, func(Context) {}, nil)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if errors.Is(err, ErrCanceled) {
		t.Fatal("deadline expiry must not satisfy errors.Is(err, ErrCanceled)")
	}
}

// TestCurveCarriesPerPointErrors: batched estimates record per-point
// failures in Estimate.Err instead of aborting the whole curve.
func TestCurveCarriesPerPointErrors(t *testing.T) {
	prog := func(ctx Context) {
		ctx.SecBegin("s")
		for i := 0; i < 4; i++ {
			ctx.TaskBegin("t")
			ctx.Compute(50_000, 0)
			ctx.TaskEnd()
		}
		ctx.SecEnd(false)
	}
	machine := DefaultMachine()
	machine.MaxEvents = 5
	prof, err := ProfileProgram(prog, &Options{Machine: machine, DisableMemoryModel: true})
	if err != nil {
		t.Fatalf("profile: %v", err)
	}
	// FF estimates don't run the machine (no budget), Synthesizer ones do.
	ests := prof.Curve(Request{Method: Synthesizer}, []int{2, 4})
	if len(ests) != 2 {
		t.Fatalf("%d estimates, want 2", len(ests))
	}
	for i, e := range ests {
		if !errors.Is(e.Err, ErrBudgetExceeded) {
			t.Errorf("point %d Err = %v, want ErrBudgetExceeded", i, e.Err)
		}
	}
}
