package prophet

import (
	"math"
	"testing"
)

// pipelineProgram is an annotated 3-stage pipeline: read (fast), process
// (slow bottleneck), write (fast) — the §VIII extension end to end.
func pipelineProgram(ctx Context) {
	ctx.PipeBegin("stream-pipeline")
	for i := 0; i < 40; i++ {
		ctx.TaskBegin("item")
		ctx.Compute(10_000, 0) // stage 0: read
		ctx.StageBreak()
		ctx.Compute(30_000, 0) // stage 1: process (bottleneck)
		ctx.StageBreak()
		ctx.Compute(10_000, 0) // stage 2: write
		ctx.TaskEnd()
	}
	ctx.PipeEnd()
}

func TestPipelineEndToEnd(t *testing.T) {
	prof, err := ProfileProgram(pipelineProgram, &Options{Machine: testMachine(4)})
	if err != nil {
		t.Fatalf("profile: %v", err)
	}
	sec := prof.Tree.TopLevelSections()[0]
	if !sec.Pipeline {
		t.Fatal("pipeline flag lost in profiling")
	}
	if sec.Tasks() != 40 {
		t.Fatalf("tasks = %d, want 40", sec.Tasks())
	}
	// Serial: 40 * 50k = 2M cycles.
	if prof.SerialCycles != 2_000_000 {
		t.Fatalf("serial = %d", prof.SerialCycles)
	}
	// Theoretical: throughput bound by the 30k stage => ~40*30k + fill
	// = ~1.22M => speedup ~1.63.
	req := Request{Threads: 3, Sched: Static}
	ffPred := prof.Estimate(Request{Method: FastForward, Threads: 3, Sched: Static}).Speedup
	synPred := prof.Estimate(Request{Method: Synthesizer, Threads: 3, Sched: Static}).Speedup
	real := prof.RealSpeedup(req)
	want := 2_000_000.0 / (40*30_000 + 20_000)
	for name, got := range map[string]float64{"FF": ffPred, "synthesizer": synPred, "real": real} {
		if math.Abs(got-want)/want > 0.15 {
			t.Errorf("%s pipeline speedup = %.2f, want ~%.2f", name, got, want)
		}
	}
	// FF and the machine must agree closely (same schedule model).
	if math.Abs(ffPred-real)/real > 0.1 {
		t.Errorf("FF %.2f vs real %.2f diverge", ffPred, real)
	}
}

func TestPipelineCompressionPreservesSemantics(t *testing.T) {
	// The 40 identical iterations compress to one Repeat=40 task; the
	// prediction must be unchanged.
	compressed, err := ProfileProgram(pipelineProgram, &Options{Machine: testMachine(4)})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := ProfileProgram(pipelineProgram, &Options{Machine: testMachine(4), CompressTolerance: -1})
	if err != nil {
		t.Fatal(err)
	}
	if compressed.Compression.NodesAfter >= compressed.Compression.NodesBefore {
		t.Fatal("pipeline tree did not compress")
	}
	a := compressed.Estimate(Request{Method: FastForward, Threads: 3, Sched: Static}).Speedup
	b := raw.Estimate(Request{Method: FastForward, Threads: 3, Sched: Static}).Speedup
	if math.Abs(a-b) > 1e-9 {
		t.Fatalf("compressed %.4f != raw %.4f", a, b)
	}
}

func TestStageBreakInOrdinaryTaskIsHarmless(t *testing.T) {
	prog := func(ctx Context) {
		ctx.SecBegin("s")
		ctx.TaskBegin("t")
		ctx.Compute(1_000, 0)
		ctx.StageBreak()
		ctx.Compute(1_000, 0)
		ctx.TaskEnd()
		ctx.SecEnd(false)
	}
	prof, err := ProfileProgram(prog, &Options{Machine: testMachine(2), CompressTolerance: -1})
	if err != nil {
		t.Fatal(err)
	}
	if prof.SerialCycles != 2_000 {
		t.Fatalf("serial = %d", prof.SerialCycles)
	}
	task := prof.Tree.TopLevelSections()[0].Children[0]
	if len(task.Children) != 2 {
		t.Fatalf("StageBreak should split the U node: %d children", len(task.Children))
	}
}

func TestStageBreakOutsideTaskFails(t *testing.T) {
	prog := func(ctx Context) { ctx.StageBreak() }
	if _, err := ProfileProgram(prog, nil); err == nil {
		t.Fatal("StageBreak outside a task accepted")
	}
}
