package prophet

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strings"

	"prophet/internal/baseline"
	"prophet/internal/clock"
	"prophet/internal/ff"
	"prophet/internal/hostexec"
	"prophet/internal/obs"
	"prophet/internal/omprt"
	"prophet/internal/realrun"
	"prophet/internal/sim"
	"prophet/internal/synth"
)

// Method selects the prediction engine.
type Method uint8

// Prediction methods.
const (
	// FastForward is the paper's analytical FF emulator (§IV-C):
	// priority-heap fast-forwarding over abstract CPUs. Fast; exact for
	// single-level loops; documented limitation on nested parallelism.
	FastForward Method = iota
	// Synthesizer is the program-synthesis emulator (§IV-E): generated
	// parallel code executed through a real runtime on the simulated
	// machine. Slower; handles nested and recursive parallelism.
	Synthesizer
	// Suitability models Intel Parallel Advisor's Suitability analysis,
	// the paper's main comparison tool (Table I).
	Suitability
	// AmdahlLaw is the analytical bound from the tree's parallel
	// fraction.
	AmdahlLaw
	// CriticalPathBound is the Kismet-style upper bound T1/max(T∞,T1/p).
	CriticalPathBound
)

// String names the method.
func (m Method) String() string {
	switch m {
	case FastForward:
		return "ff"
	case Synthesizer:
		return "synthesizer"
	case Suitability:
		return "suitability"
	case AmdahlLaw:
		return "amdahl"
	case CriticalPathBound:
		return "critical-path"
	}
	return fmt.Sprintf("Method(%d)", uint8(m))
}

// Request describes one prediction to make. It marshals to JSON with
// stable field names; Method, Paradigm and Sched encode as their String()
// spellings and decode through the Parse* functions, so a request
// round-trips as e.g.
//
//	{"method":"ff","threads":8,"paradigm":"openmp","sched":"(dynamic,1)","memory_model":true}
type Request struct {
	// Method selects the engine (default FastForward).
	Method Method `json:"method"`
	// Threads is the CPU count to predict for (default: the machine's
	// core count).
	Threads int `json:"threads"`
	// Paradigm is OpenMP or Cilk (default OpenMP).
	Paradigm Paradigm `json:"paradigm"`
	// Sched is the OpenMP schedule (default (static)).
	Sched Sched `json:"sched"`
	// MemoryModel applies burden factors when true (the paper's PredM
	// series; Pred when false).
	MemoryModel bool `json:"memory_model"`
	// Machine, when non-empty, names the machine preset to predict for
	// (machine.ParseSpec vocabulary; see MachineNames). The profile is
	// re-profiled and recalibrated for the named machine (cached per
	// name). Empty predicts on the profile's own machine — the field is
	// omitted from JSON then, so pre-machine payloads are unchanged.
	Machine string `json:"machine,omitempty"`
}

// Estimate is a prediction result. It marshals to JSON with stable field
// names — the request's fields inline, "speedup", "time_cycles" and
// "err" (the error flattened to its message, omitted when nil).
type Estimate struct {
	Request
	// Speedup is serial time / predicted parallel time.
	Speedup float64 `json:"speedup"`
	// Time is the predicted parallel execution time in cycles.
	Time clock.Cycles `json:"time_cycles"`
	// Err is the typed error of a failed prediction (nil on success);
	// Speedup and Time are zero when set. The error also comes back as
	// the second return of EstimateCtx — the field exists so batched
	// results (Curve) carry their per-point failures.
	Err error `json:"-"`
	// Source marks how the estimate was produced: SourceSurrogate for
	// answers served from the learned surrogate predictor, empty for
	// emulated results. Empty omits the field from JSON, so every
	// emulated payload is byte-identical to the pre-surrogate wire
	// format.
	Source string `json:"source,omitempty"`
}

// SourceSurrogate is the Estimate.Source value of a surrogate-served
// prediction.
const SourceSurrogate = "surrogate"

// estimateJSON is the stable wire form of Estimate.
type estimateJSON struct {
	Request
	Speedup float64      `json:"speedup"`
	Time    clock.Cycles `json:"time_cycles"`
	Err     string       `json:"err,omitempty"`
	Source  string       `json:"source,omitempty"`
}

// MarshalJSON writes the estimate with Err flattened to its message.
func (e Estimate) MarshalJSON() ([]byte, error) {
	w := estimateJSON{Request: e.Request, Speedup: e.Speedup, Time: e.Time, Source: e.Source}
	if e.Err != nil {
		w.Err = e.Err.Error()
	}
	return json.Marshal(w)
}

// UnmarshalJSON restores an estimate; a non-empty err string becomes an
// opaque error carrying the same message (the concrete error type is not
// preserved across the wire).
func (e *Estimate) UnmarshalJSON(data []byte) error {
	var w estimateJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	e.Request, e.Speedup, e.Time, e.Source, e.Err = w.Request, w.Speedup, w.Time, w.Source, nil
	if w.Err != "" {
		e.Err = errors.New(w.Err)
	}
	return nil
}

func (p *Profile) threadsOf(req Request) int {
	if req.Threads > 0 {
		return req.Threads
	}
	return p.opts.Machine.Normalized().Cores
}

// Estimate runs one prediction against the profile. It never panics: a
// failed prediction returns with Err set (and zero Speedup/Time).
func (p *Profile) Estimate(req Request) Estimate {
	est, _ := p.EstimateCtx(context.Background(), req)
	return est
}

// EstimateCtx is Estimate with cancellation and typed errors: the emulated
// machine runs (Synthesizer) and the FF's event loop poll ctx, and
// simulation failures — a deadlocked emulation (ErrDeadlock, with the wait
// graph in *DeadlockError), a watchdog budget (ErrBudgetExceeded), a
// malformed tree — return as errors instead of panicking. The returned
// Estimate carries the same error in its Err field.
func (p *Profile) EstimateCtx(ctx context.Context, req Request) (est Estimate, err error) {
	defer func() {
		recoverToError(&err)
		if err != nil {
			est = Estimate{Request: req, Err: err}
		}
	}()
	if req.Machine != "" {
		vp, verr := p.forMachine(ctx, req.Machine)
		if verr != nil {
			err = verr
			return Estimate{Request: req, Err: err}, err
		}
		if vp != p {
			// Estimate against the variant, which owns the machine the
			// name resolves to; the result keeps the requested name.
			sub := req
			sub.Machine = ""
			est, err := vp.EstimateCtx(ctx, sub)
			est.Machine = req.Machine
			return est, err
		}
	}
	t := p.threadsOf(req)
	req.Threads = t
	if err := ctx.Err(); err != nil {
		return Estimate{Request: req, Err: err}, err
	}
	// Surrogate-first: a confident learned prediction answers in
	// microseconds without touching the emulators; a shadow-sampled hit
	// falls through to the emulator and records the error pair; anything
	// else emulates and feeds the exact result back as training data.
	var (
		sg       = p.opts.Surrogate
		sgKey    string
		sgVec    []float64
		sgShadow bool
		sgPred   float64
	)
	if sg != nil {
		sgKey, sgVec = p.surrogateQuery(req)
		if val, ok, shadow := sg.Predict(sgKey, sgVec); ok {
			if !shadow {
				return surrogateEstimate(req, val, p.SerialCycles), nil
			}
			sgShadow, sgPred = true, val
		}
	}
	tm := p.opts.Observer.Metrics.StartTimer(obs.MStageEmulate)
	defer tm.Stop()
	useMem := req.MemoryModel && p.Model != nil
	var speedup float64
	switch req.Method {
	case Synthesizer:
		s := &synth.Synthesizer{
			Threads:   t,
			Paradigm:  req.Paradigm,
			Sched:     req.Sched,
			UseBurden: useMem,
			Machine:   p.opts.Machine,
			OmpOv:     omprt.DefaultOverheads(),
			Tracer:    p.opts.Observer.Trace,
			Metrics:   p.opts.Observer.Metrics,
		}
		speedup, err = s.SpeedupCtx(ctx, p.Tree)
	case Suitability:
		s := &baseline.Suitability{Threads: t}
		speedup = s.Speedup(p.Tree)
	case AmdahlLaw:
		speedup = baseline.AmdahlFromTree(p.Tree, t)
	case CriticalPathBound:
		speedup = baseline.KismetBound(p.Tree, t)
	default: // FastForward
		var speeds []float64
		if s := p.opts.Machine.Spec; s != nil {
			speeds = s.CoreSpeeds(t)
		}
		e := &ff.Emulator{
			Threads:   t,
			Sched:     req.Sched,
			Ov:        omprt.DefaultOverheads(),
			UseBurden: useMem,
			Speeds:    speeds,
			Tracer:    p.opts.Observer.Trace,
		}
		speedup, err = e.SpeedupCtx(ctx, p.Tree)
	}
	if err != nil {
		return Estimate{Request: req, Err: err}, err
	}
	if sg != nil {
		if sgShadow {
			sg.RecordShadow(sgPred, speedup)
		}
		sg.Observe(sgKey, sgVec, speedup)
	}
	var predTime clock.Cycles
	if speedup > 0 {
		predTime = clock.Cycles(float64(p.SerialCycles)/speedup + 0.5)
	}
	return Estimate{Request: req, Speedup: speedup, Time: predTime}, nil
}

// Curve evaluates the request across several thread counts (one line of a
// Fig. 12 plot).
func (p *Profile) Curve(req Request, threads []int) []Estimate {
	out, _ := p.CurveCtx(context.Background(), req, threads)
	return out
}

// CurveCtx is Curve with cancellation. Per-point failures are recorded in
// each Estimate's Err field and the sweep continues; a canceled context
// stops the sweep and returns the points evaluated so far along with the
// cancellation error.
func (p *Profile) CurveCtx(ctx context.Context, req Request, threads []int) ([]Estimate, error) {
	out := make([]Estimate, 0, len(threads))
	for _, t := range threads {
		r := req
		r.Threads = t
		est, err := p.EstimateCtx(ctx, r)
		out = append(out, est)
		if err != nil && ctx.Err() != nil {
			return out, err
		}
	}
	return out, nil
}

// EstimateOnHost runs the program-synthesis emulation on the real host
// machine — goroutines, spin delays and sync.Mutex — instead of the
// simulated machine. This is the paper's original deployment mode
// ("programmers should run Parallel Prophet where they will run a
// parallelized code"): on a multicore host it measures real parallel
// behaviour; results are only as stable as the host is quiet.
func (p *Profile) EstimateOnHost(req Request) Estimate {
	est, _ := p.EstimateOnHostCtx(context.Background(), req)
	return est
}

// EstimateOnHostCtx is EstimateOnHost with panic containment and an entry
// cancellation check. Once the host emulation is launched it runs to
// completion — real goroutines spinning real delays have no preemption
// point the library could honour without perturbing the measurement.
func (p *Profile) EstimateOnHostCtx(ctx context.Context, req Request) (est Estimate, err error) {
	defer func() {
		recoverToError(&err)
		if err != nil {
			est = Estimate{Request: req, Err: err}
		}
	}()
	if req.Machine != "" {
		vp, verr := p.forMachine(ctx, req.Machine)
		if verr != nil {
			err = verr
			return Estimate{Request: req, Err: err}, err
		}
		if vp != p {
			sub := req
			sub.Machine = ""
			est, err := vp.EstimateOnHostCtx(ctx, sub)
			est.Machine = req.Machine
			return est, err
		}
	}
	t := p.threadsOf(req)
	req.Threads = t
	req.Method = Synthesizer
	if err := ctx.Err(); err != nil {
		return Estimate{Request: req, Err: err}, err
	}
	s := &hostexec.HostSynthesizer{
		Threads:   t,
		Paradigm:  req.Paradigm,
		Sched:     req.Sched,
		UseBurden: req.MemoryModel && p.Model != nil,
	}
	speedup := s.Speedup(p.Tree)
	var predTime clock.Cycles
	if speedup > 0 {
		predTime = clock.Cycles(float64(p.SerialCycles)/speedup + 0.5)
	}
	return Estimate{Request: req, Speedup: speedup, Time: predTime}, nil
}

// ExplainBurden returns the memory-model internals (Eq. 1–5 intermediates)
// for the named top-level section at the given thread count, and whether
// the section was found. With the memory model disabled the explanation
// reports a gate and β = 1.
func (p *Profile) ExplainBurden(section string, threads int) (BurdenExplanation, bool) {
	for _, sec := range p.Tree.TopLevelSections() {
		if sec.Name != section {
			continue
		}
		if p.Model == nil || sec.Counters == nil {
			return BurdenExplanation{Threads: threads, Gate: "memory model disabled", Burden: 1}, true
		}
		return p.Model.Explain(*sec.Counters, threads), true
	}
	return BurdenExplanation{}, false
}

// Regions returns a Kremlin-style per-section profile: work, span,
// self-parallelism and coverage for every parallel region, ranked by total
// work — the "which region should I parallelize first" view that
// complements the whole-program speedup estimates.
func (p *Profile) Regions() []Region {
	return baseline.Regions(p.Tree)
}

// RealSpeedup runs the profiled tree as an actually parallelized program
// on the simulated machine (the evaluation's ground truth; not available
// to a user of the real tool, but essential for validating predictions —
// §VII's "Real" series).
func (p *Profile) RealSpeedup(req Request) float64 {
	s, _ := p.RealSpeedupCtx(context.Background(), req)
	return s
}

// RealSpeedupCtx is RealSpeedup with cancellation and typed errors: a
// ground-truth run that deadlocks or exceeds the machine's watchdog budget
// returns the typed error instead of panicking.
func (p *Profile) RealSpeedupCtx(ctx context.Context, req Request) (s float64, err error) {
	defer recoverToError(&err)
	if req.Machine != "" {
		vp, err := p.forMachine(ctx, req.Machine)
		if err != nil {
			return 0, err
		}
		if vp != p {
			sub := req
			sub.Machine = ""
			return vp.RealSpeedupCtx(ctx, sub)
		}
	}
	t := p.threadsOf(req)
	return realrun.SpeedupCtx(ctx, p.Tree, realrun.Config{
		Machine:  p.opts.Machine,
		Threads:  t,
		Paradigm: req.Paradigm,
		Sched:    req.Sched,
		Tracer:   p.opts.Observer.Trace,
		Metrics:  p.opts.Observer.Metrics,
	})
}

// Timeline executes the ground truth for req on the simulated machine with
// a slice recorder attached and returns a per-core text timeline (width
// columns wide) plus each core's busy fraction — the per-CPU lanes Fig. 5
// and Fig. 7 draw by hand.
//
// Timeline is the legacy convenience wrapper around TimelineCtx: it
// swallows the error, returning whatever partial timeline the recorder
// captured (possibly empty) when the ground-truth run fails. Callers that
// need to distinguish a genuinely idle machine from a deadlocked or
// over-budget run should use TimelineCtx.
func (p *Profile) Timeline(req Request, width int) (gantt string, utilization map[int]float64) {
	gantt, utilization, _ = p.TimelineCtx(context.Background(), req, width)
	return gantt, utilization
}

// TimelineCtx is Timeline with cancellation and typed errors: a
// ground-truth run that deadlocks (ErrDeadlock), exceeds the watchdog
// budget (ErrBudgetExceeded) or is canceled returns the error alongside
// the timeline of whatever executed up to the failure.
func (p *Profile) TimelineCtx(ctx context.Context, req Request, width int) (gantt string, utilization map[int]float64, err error) {
	defer recoverToError(&err)
	if req.Machine != "" {
		vp, verr := p.forMachine(ctx, req.Machine)
		if verr != nil {
			return "", nil, verr
		}
		if vp != p {
			sub := req
			sub.Machine = ""
			return vp.TimelineCtx(ctx, sub, width)
		}
	}
	rec := &sim.Recorder{}
	_, runErr := realrun.TimeTracedCtx(ctx, p.Tree, realrun.Config{
		Machine:  p.opts.Machine,
		Threads:  p.threadsOf(req),
		Paradigm: req.Paradigm,
		Sched:    req.Sched,
		Tracer:   p.opts.Observer.Trace,
		Metrics:  p.opts.Observer.Metrics,
	}, rec)
	var b strings.Builder
	if werr := rec.Gantt(&b, width); werr != nil && runErr == nil {
		runErr = werr
	}
	return b.String(), rec.Utilization(), runErr
}
