package prophet

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strings"

	"prophet/internal/obs"
	"prophet/internal/sweep"
)

// Advice is the outcome of a configuration sweep plus the causal region
// experiments: every (paradigm, schedule, thread-count) estimate, the
// best configuration, the per-region marginal speedups, and the
// diagnosis the paper's workflow is meant to support — should this
// program be parallelized at all, what limits it, and which region
// should be parallelized first?
type Advice struct {
	// Best is the highest-speedup estimate of the sweep (the zero value
	// when every estimate failed; see Err).
	Best Estimate
	// Sweep holds every estimate, sorted by descending speedup. Errored
	// estimates never rank: they sort after all successful ones.
	Sweep []Estimate
	// ParallelFraction is the tree's Amdahl fraction.
	ParallelFraction float64
	// UpperBound is the Kismet-style critical-path bound at the largest
	// thread count swept.
	UpperBound float64
	// SaturationThreads, when non-zero, is the smallest swept thread
	// count beyond which the best schedule gains less than 10%
	// (the "stop buying cores here" point; memory-bound programs
	// saturate early, Fig. 2).
	SaturationThreads int
	// MemoryLimited reports whether the memory model reduced the best
	// configuration's estimate by more than 10% versus ignoring memory.
	MemoryLimited bool
	// TargetThreads is the core count the region experiments ran at:
	// the largest thread count swept.
	TargetThreads int
	// Regions ranks the candidate regions (top-level sections and serial
	// runs) by marginal speedup at TargetThreads — including
	// anti-recommendations (Marginal < 1) where the memory model
	// predicts parallelizing the region would slow the program down.
	Regions []RegionAdvice
	// Err is the first estimate error of the sweep (nil when every
	// configuration estimated cleanly). With at least one successful
	// estimate the advice is still usable; when everything failed, Best
	// stays zero and AdviseCtx returns this error.
	Err error
}

// AdviseEstimator computes one estimate cell on behalf of AdviseCtx.
// scope is "" for the baseline configuration sweep (prof is the advised
// profile itself) and "region:<kind>:<name>" for a region-variant cell
// (prof is the synthesized variant). Servers plug in their cache
// hierarchy here; nil selects prof.EstimateCtx directly.
type AdviseEstimator func(ctx context.Context, scope string, prof *Profile, req Request) (Estimate, error)

// AdviseOptions shapes the sweep.
type AdviseOptions struct {
	// Threads are the CPU counts to sweep (default: the profile's
	// ThreadCounts). The list is normalized — deduplicated, ascending —
	// exactly like ParseCores, so an unsorted input yields the same
	// Advice as a sorted one.
	Threads []int
	// Method is the prediction engine. Passing nil AdviseOptions selects
	// Synthesizer (the paper's "more realistic predictions" choice,
	// Table III); with explicit options the zero value means
	// FastForward, as everywhere else.
	Method Method
	// Paradigms to sweep (default: OpenMP and Cilk).
	Paradigms []Paradigm
	// Scheds to sweep for OpenMP (default: static, static,1,
	// dynamic,1).
	Scheds []Sched
	// Workers bounds the sweep fan-out (0 = GOMAXPROCS, as in
	// sweep.Engine).
	Workers int
	// Estimator overrides how each cell is computed (see
	// AdviseEstimator); nil estimates against the profile directly.
	Estimator AdviseEstimator
}

func (o *AdviseOptions) withDefaults(p *Profile) AdviseOptions {
	var out AdviseOptions
	if o != nil {
		out = *o
	}
	if len(out.Threads) == 0 {
		out.Threads = p.opts.withDefaults().ThreadCounts
	}
	// Normalize the axis like ParseCores: ascending, deduplicated. The
	// largest-count lookups and the saturation walk assume a monotone
	// curve; an unsorted -cores input used to corrupt both.
	ts := make([]int, 0, len(out.Threads))
	seen := make(map[int]bool, len(out.Threads))
	for _, t := range out.Threads {
		if t < 1 || seen[t] {
			continue
		}
		seen[t] = true
		ts = append(ts, t)
	}
	sort.Ints(ts)
	out.Threads = ts
	if out.Method == FastForward && o == nil {
		out.Method = Synthesizer
	}
	if len(out.Paradigms) == 0 {
		out.Paradigms = []Paradigm{OpenMP, Cilk}
	}
	if len(out.Scheds) == 0 {
		out.Scheds = []Sched{Static, Static1, Dynamic1}
	}
	return out
}

// Advise sweeps parallelization configurations with the memory model
// applied and returns the ranked results plus a diagnosis. It is
// AdviseCtx without cancellation; the error (if any) is carried on
// Advice.Err.
func (p *Profile) Advise(opts *AdviseOptions) Advice {
	adv, _ := p.AdviseCtx(context.Background(), opts)
	return adv
}

// AdviseCtx runs the configuration sweep and the causal region
// experiments, fanning both through internal/sweep. Cancellation returns
// the partial Advice accumulated so far along with ctx's error; a sweep
// where no configuration could be estimated returns the first cell error
// (also on Advice.Err). Per-cell failures with at least one success are
// not an error: they surface on Advice.Err and in the errored tail of
// Sweep/Regions.
func (p *Profile) AdviseCtx(ctx context.Context, opts *AdviseOptions) (Advice, error) {
	o := opts.withDefaults(p)
	met := p.opts.Observer.Metrics
	met.Counter(obs.MAdviseRuns).Inc()
	tm := met.StartTimer(obs.MAdviseLatency)
	defer tm.Stop()

	estFn := o.Estimator
	if estFn == nil {
		estFn = func(ctx context.Context, _ string, prof *Profile, req Request) (Estimate, error) {
			return prof.EstimateCtx(ctx, req)
		}
	}
	eng := sweep.Engine{Workers: o.Workers, Metrics: met}

	var adv Advice
	if len(o.Threads) == 0 {
		adv.Err = errors.New("prophet: advise: no valid thread counts")
		return adv, adv.Err
	}
	maxT := o.Threads[len(o.Threads)-1]
	adv.TargetThreads = maxT

	// The configuration grid in deterministic order: paradigm → sched →
	// threads, threads innermost (each paradigm/sched run traces one
	// speedup curve).
	var grid []Request
	for _, paradigm := range o.Paradigms {
		scheds := o.Scheds
		if paradigm == Cilk {
			scheds = []Sched{{}} // work stealing has no OpenMP schedule
		}
		for _, sched := range scheds {
			for _, t := range o.Threads {
				grid = append(grid, Request{
					Method: o.Method, Threads: t,
					Paradigm: paradigm, Sched: sched,
					MemoryModel: true,
				})
			}
		}
	}
	outs := sweep.RunCtx(ctx, eng, len(grid), func(cctx context.Context, i int) (Estimate, error) {
		return estFn(cctx, "", p, grid[i])
	})

	// Merge in grid order. Errored estimates are kept (the report shows
	// what failed) but never rank: they cannot become Best and sort after
	// every successful estimate.
	speedups := make(map[Request]float64, len(outs))
	for i, out := range outs {
		if out.Skipped {
			continue
		}
		e := out.Value
		if e.Request == (Request{}) {
			e.Request = grid[i] // a panicking estimator leaves Value zero
		}
		if out.Err != nil || e.Err != nil {
			if e.Err == nil {
				e.Err = out.Err
			}
			if adv.Err == nil {
				adv.Err = e.Err
			}
			adv.Sweep = append(adv.Sweep, e)
			continue
		}
		adv.Sweep = append(adv.Sweep, e)
		speedups[e.Request] = e.Speedup
		if e.Speedup > adv.Best.Speedup {
			adv.Best = e
		}
	}
	sort.SliceStable(adv.Sweep, func(i, j int) bool {
		ei, ej := adv.Sweep[i], adv.Sweep[j]
		if (ei.Err == nil) != (ej.Err == nil) {
			return ei.Err == nil
		}
		return ei.Speedup > ej.Speedup
	})

	adv.ParallelFraction = parallelFraction(p)
	if ub, err := estFn(ctx, "", p, Request{Method: CriticalPathBound, Threads: maxT}); err == nil && ub.Err == nil {
		adv.UpperBound = ub.Speedup
	}

	if adv.Best.Speedup > 0 {
		// Saturation: walk the best configuration's own curve, reading
		// the already-computed sweep points (Threads are ascending, so
		// the walk sees a monotone axis). Errored or skipped points are
		// unknowable, not evidence of saturation.
		bestReq := adv.Best.Request
		prev := 0.0
		for _, t := range o.Threads {
			r := bestReq
			r.Threads = t
			s, ok := speedups[r]
			if !ok {
				continue
			}
			if prev > 0 && s < prev*1.10 {
				adv.SaturationThreads = t
				break
			}
			prev = s
		}
		// Memory limitation: compare the best configuration with and
		// without burden factors.
		noMem := bestReq
		noMem.MemoryModel = false
		if plain, err := estFn(ctx, "", p, noMem); err == nil && plain.Err == nil && plain.Speedup > 0 {
			adv.MemoryLimited = adv.Best.Speedup < 0.9*plain.Speedup
		}

		// Causal region experiments at the target core count, under the
		// best configuration.
		adv.Regions = p.adviseRegions(ctx, eng, estFn, bestReq, maxT, speedups)
	}

	if err := ctx.Err(); err != nil {
		if adv.Err == nil {
			adv.Err = err
		}
		return adv, err
	}
	if adv.Best.Speedup <= 0 && adv.Err != nil {
		// Nothing estimable: the advice carries only diagnostics.
		return adv, adv.Err
	}
	return adv, nil
}

func parallelFraction(p *Profile) float64 {
	total := p.Tree.TotalLen()
	if total == 0 {
		return 0
	}
	serial := p.Tree.SerialOutsideSections()
	return 1 - float64(serial)/float64(total)
}

// adviceJSON is the stable wire form of Advice.
type adviceJSON struct {
	Best              Estimate       `json:"best"`
	Sweep             []Estimate     `json:"sweep"`
	ParallelFraction  float64        `json:"parallel_fraction"`
	UpperBound        float64        `json:"upper_bound"`
	SaturationThreads int            `json:"saturation_threads,omitempty"`
	MemoryLimited     bool           `json:"memory_limited,omitempty"`
	TargetThreads     int            `json:"target_threads"`
	Regions           []RegionAdvice `json:"regions,omitempty"`
	Err               string         `json:"err,omitempty"`
}

// MarshalJSON writes the advice with Err flattened to its message, like
// Estimate.
func (a Advice) MarshalJSON() ([]byte, error) {
	w := adviceJSON{
		Best: a.Best, Sweep: a.Sweep,
		ParallelFraction: a.ParallelFraction, UpperBound: a.UpperBound,
		SaturationThreads: a.SaturationThreads, MemoryLimited: a.MemoryLimited,
		TargetThreads: a.TargetThreads, Regions: a.Regions,
	}
	if a.Err != nil {
		w.Err = a.Err.Error()
	}
	return json.Marshal(w)
}

// UnmarshalJSON restores an advice; a non-empty err string becomes an
// opaque error carrying the same message.
func (a *Advice) UnmarshalJSON(data []byte) error {
	var w adviceJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	*a = Advice{
		Best: w.Best, Sweep: w.Sweep,
		ParallelFraction: w.ParallelFraction, UpperBound: w.UpperBound,
		SaturationThreads: w.SaturationThreads, MemoryLimited: w.MemoryLimited,
		TargetThreads: w.TargetThreads, Regions: w.Regions,
	}
	if w.Err != "" {
		a.Err = errors.New(w.Err)
	}
	return nil
}

// String renders the advice as a short human-readable report.
func (a Advice) String() string {
	var b strings.Builder
	if a.Best.Speedup <= 0 {
		b.WriteString("no configuration could be estimated")
		if a.Err != nil {
			fmt.Fprintf(&b, ": %v", a.Err)
		}
		fmt.Fprintf(&b, "\nparallel fraction: %.0f%%; critical-path upper bound: %.2fx\n",
			100*a.ParallelFraction, a.UpperBound)
		return b.String()
	}
	fmt.Fprintf(&b, "best: %.2fx with %s on %d threads", a.Best.Speedup, a.Best.Paradigm, a.Best.Threads)
	if a.Best.Paradigm == OpenMP {
		fmt.Fprintf(&b, " %v", a.Best.Sched)
	}
	fmt.Fprintf(&b, "\nparallel fraction: %.0f%%; critical-path upper bound: %.2fx\n",
		100*a.ParallelFraction, a.UpperBound)
	if a.MemoryLimited {
		b.WriteString("memory-limited: bandwidth contention reduces the estimate by >10%\n")
	}
	if a.SaturationThreads > 0 {
		fmt.Fprintf(&b, "diminishing returns beyond %d threads (<10%% gain per step)\n", a.SaturationThreads)
	}
	if a.Err != nil {
		fmt.Fprintf(&b, "some estimates failed (first: %v)\n", a.Err)
	}
	n := len(a.Sweep)
	if n > 5 {
		n = 5
	}
	b.WriteString("top configurations:\n")
	for i := 0; i < n; i++ {
		e := a.Sweep[i]
		if e.Err != nil {
			fmt.Fprintf(&b, "  error  %-6s %2d threads: %v\n", e.Paradigm, e.Threads, e.Err)
			continue
		}
		sched := e.Sched.String()
		if e.Paradigm == Cilk {
			sched = "(steal)"
		}
		fmt.Fprintf(&b, "  %.2fx  %-6s %-11s %2d threads\n", e.Speedup, e.Paradigm, sched, e.Threads)
	}
	if len(a.Regions) > 0 {
		fmt.Fprintf(&b, "regions by marginal speedup at %d threads:\n", a.TargetThreads)
		for _, r := range a.Regions {
			switch {
			case r.Err != nil:
				fmt.Fprintf(&b, "  error  %-7s %-14s %v\n", r.Kind, r.Region, r.Err)
			case r.Recommend:
				fmt.Fprintf(&b, "  %.2fx  %-7s %-14s parallelize (%.0f%% of serial time)\n",
					r.Marginal, r.Kind, r.Region, 100*r.Coverage)
			default:
				fmt.Fprintf(&b, "  %.2fx  %-7s %-14s not worth it (memory model predicts no gain)\n",
					r.Marginal, r.Kind, r.Region)
			}
		}
	}
	return b.String()
}
