package prophet

import (
	"fmt"
	"sort"
	"strings"
)

// Advice is the outcome of a configuration sweep: every (paradigm,
// schedule, thread-count) estimate, the best configuration, and the
// diagnosis the paper's workflow is meant to support — should this
// program be parallelized at all, and what limits it?
type Advice struct {
	// Best is the highest-speedup estimate of the sweep.
	Best Estimate
	// Sweep holds every estimate, sorted by descending speedup.
	Sweep []Estimate
	// ParallelFraction is the tree's Amdahl fraction.
	ParallelFraction float64
	// UpperBound is the Kismet-style critical-path bound at the largest
	// thread count swept.
	UpperBound float64
	// SaturationThreads, when non-zero, is the smallest swept thread
	// count beyond which the best schedule gains less than 10%
	// (the "stop buying cores here" point; memory-bound programs
	// saturate early, Fig. 2).
	SaturationThreads int
	// MemoryLimited reports whether the memory model reduced the best
	// configuration's estimate by more than 10% versus ignoring memory.
	MemoryLimited bool
}

// AdviseOptions shapes the sweep.
type AdviseOptions struct {
	// Threads are the CPU counts to sweep (default: the profile's
	// ThreadCounts).
	Threads []int
	// Method is the prediction engine. Passing nil AdviseOptions selects
	// Synthesizer (the paper's "more realistic predictions" choice,
	// Table III); with explicit options the zero value means
	// FastForward, as everywhere else.
	Method Method
	// Paradigms to sweep (default: OpenMP and Cilk).
	Paradigms []Paradigm
	// Scheds to sweep for OpenMP (default: static, static,1,
	// dynamic,1).
	Scheds []Sched
}

func (o *AdviseOptions) withDefaults(p *Profile) AdviseOptions {
	var out AdviseOptions
	if o != nil {
		out = *o
	}
	if len(out.Threads) == 0 {
		out.Threads = p.opts.withDefaults().ThreadCounts
	}
	if out.Method == FastForward && o == nil {
		out.Method = Synthesizer
	}
	if len(out.Paradigms) == 0 {
		out.Paradigms = []Paradigm{OpenMP, Cilk}
	}
	if len(out.Scheds) == 0 {
		out.Scheds = []Sched{Static, Static1, Dynamic1}
	}
	return out
}

// Advise sweeps parallelization configurations with the memory model
// applied and returns the ranked results plus a diagnosis.
func (p *Profile) Advise(opts *AdviseOptions) Advice {
	o := opts.withDefaults(p)
	var adv Advice
	for _, paradigm := range o.Paradigms {
		scheds := o.Scheds
		if paradigm == Cilk {
			scheds = []Sched{{}} // work stealing has no OpenMP schedule
		}
		for _, sched := range scheds {
			for _, t := range o.Threads {
				est := p.Estimate(Request{
					Method: o.Method, Threads: t,
					Paradigm: paradigm, Sched: sched,
					MemoryModel: true,
				})
				adv.Sweep = append(adv.Sweep, est)
				if est.Speedup > adv.Best.Speedup {
					adv.Best = est
				}
			}
		}
	}
	sort.SliceStable(adv.Sweep, func(i, j int) bool {
		return adv.Sweep[i].Speedup > adv.Sweep[j].Speedup
	})

	adv.ParallelFraction = parallelFraction(p)
	maxT := o.Threads[len(o.Threads)-1]
	adv.UpperBound = p.Estimate(Request{Method: CriticalPathBound, Threads: maxT}).Speedup

	// Saturation: walk the best configuration's own curve.
	bestReq := adv.Best.Request
	prev := 0.0
	for _, t := range o.Threads {
		r := bestReq
		r.Threads = t
		s := p.Estimate(r).Speedup
		if prev > 0 && s < prev*1.10 {
			adv.SaturationThreads = t
			break
		}
		prev = s
	}
	// Memory limitation: compare the best configuration with and without
	// burden factors.
	noMem := bestReq
	noMem.MemoryModel = false
	if plain := p.Estimate(noMem).Speedup; plain > 0 {
		adv.MemoryLimited = adv.Best.Speedup < 0.9*plain
	}
	return adv
}

func parallelFraction(p *Profile) float64 {
	total := p.Tree.TotalLen()
	if total == 0 {
		return 0
	}
	serial := p.Tree.SerialOutsideSections()
	return 1 - float64(serial)/float64(total)
}

// String renders the advice as a short human-readable report.
func (a Advice) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "best: %.2fx with %s on %d threads", a.Best.Speedup, a.Best.Paradigm, a.Best.Threads)
	if a.Best.Paradigm == OpenMP {
		fmt.Fprintf(&b, " %v", a.Best.Sched)
	}
	fmt.Fprintf(&b, "\nparallel fraction: %.0f%%; critical-path upper bound: %.2fx\n",
		100*a.ParallelFraction, a.UpperBound)
	if a.MemoryLimited {
		b.WriteString("memory-limited: bandwidth contention reduces the estimate by >10%\n")
	}
	if a.SaturationThreads > 0 {
		fmt.Fprintf(&b, "diminishing returns beyond %d threads (<10%% gain per step)\n", a.SaturationThreads)
	}
	n := len(a.Sweep)
	if n > 5 {
		n = 5
	}
	b.WriteString("top configurations:\n")
	for i := 0; i < n; i++ {
		e := a.Sweep[i]
		sched := e.Sched.String()
		if e.Paradigm == Cilk {
			sched = "(steal)"
		}
		fmt.Fprintf(&b, "  %.2fx  %-6s %-11s %2d threads\n", e.Speedup, e.Paradigm, sched, e.Threads)
	}
	return b.String()
}
